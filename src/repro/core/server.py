"""The server: owner of the database disks and the single log (Figure 1).

The server provides every service the paper assigns to it:

* page service with coherency (callbacks to the update-privilege owner,
  invalidations on privilege transfer);
* the global lock manager (logical locks in LLM names, P-locks for
  update privilege, lock-table-resident RecAddrs for the section 2.6.2
  variant);
* the log service: appending client batches, WAL enforcement via
  ForceAddr, RecLSN→RecAddr mapping, commit forcing;
* checkpoints: its own *coordinated* checkpoint (section 2.7 — client
  DPLs gathered before merging its own) and the rewriting/recording of
  client checkpoints (section 2.6.1);
* recovery: its own restart (analysis/redo/undo over all systems'
  records), recovery on behalf of failed clients, in-operation page
  recovery (section 2.5) and media recovery from the archive;
* the Commit_LSN computation and Max_LSN distribution of section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.config import ClientRecoveryInfo, SystemConfig
from repro.core.commit_lsn import GlobalTransactionTracker
from repro.core.log_records import (
    BeginCheckpointRecord,
    CDPLRecord,
    DirtyPageEntry,
    EndCheckpointRecord,
    LogRecord,
    PrepareRecord,
    SERVER_ID,
    TxnTableEntry,
    UpdateRecord,
)
from repro.core.lsn import LSN, LogAddr, NULL_ADDR, NULL_LSN
from repro.core.recovery import (
    AnalysisResult,
    LogicalUndoHandler,
    RestartTxn,
)
from repro.recovery.engines import RecoveryContext, make_engine
from repro.core.server_log import ServerLogManager
from repro.errors import (
    LockConflictError,
    MediaFailureError,
    NodeUnavailableError,
    PageCorruptedError,
    PageNotFoundError,
    RecoveryError,
    WALViolationError,
)
from repro.faults import FaultPlan, io_retry
from repro.locking.glm import GlobalLockManager
from repro.locking.lock_modes import LockMode
from repro.net.messages import MsgType
from repro.net.network import Network
from repro.net.rpc import RpcDispatcher, RpcStub
from repro.storage.archive import Archive
from repro.storage.buffer_pool import BufferControlBlock, BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page, PageKind
from repro.storage.space_map import SpaceMapLayout

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer
    from repro.sanitizer import Sanitizer


@dataclass
class RecoveryReport:
    """What one recovery run did — the benchmarks' raw material."""

    kind: str
    analysis_records: int = 0
    redo_records_scanned: int = 0
    redo_considered: int = 0
    redos_applied: int = 0
    undo_records_scanned: int = 0
    clrs_written: int = 0
    txns_rolled_back: int = 0
    dpl_size: int = 0
    #: Which recovery engine ran (``SystemConfig.recovery_engine``).
    engine: str = "serial"
    #: Why a non-serial engine fell back to the serial passes, if it did.
    fallback: Optional[str] = None

    @property
    def total_log_records_processed(self) -> int:
        return (self.analysis_records + self.redo_records_scanned
                + self.undo_records_scanned)


class _ServerPageAccess:
    """RecoveryPageAccess over the server's pool and disk."""

    def __init__(self, server: "Server") -> None:
        self._server = server

    def fetch(self, page_id: int) -> Page:
        return self._server._page_for_recovery(page_id)

    def mark_dirty(self, page_id: int, rec_addr: LogAddr) -> None:
        self._server._mark_recovered_dirty(page_id, rec_addr)


class _ServerClrWriter:
    """ClrWriter over the server's log manager (restart / client recovery)."""

    def __init__(self, server: "Server") -> None:
        self._server = server

    def next_lsn(self, page_lsn: LSN) -> LSN:
        return self._server.log.clock.next_lsn(page_lsn)

    def append(self, record: LogRecord) -> LogAddr:
        addr = self._server.log.append_local(record)
        self._server.tracker.observe(record, addr)
        return addr


class Server:
    """The server node of the complex."""

    node_id = SERVER_ID

    def __init__(self, config: SystemConfig, network: Network,
                 node_id: Optional[str] = None) -> None:
        self.config = config
        self.network = network
        if node_id is not None:
            # Failover promotion builds a second Server around the
            # standby's replicas; it keeps its own network identity so
            # the fenced old primary's node id stays distinct.
            self.node_id = node_id
        self.disk = Disk()
        self.log = ServerLogManager(config.group_commit_window)
        self.glm = GlobalLockManager()
        self.tracker = GlobalTransactionTracker()
        self.archive = Archive()
        self.layout = SpaceMapLayout(config.smp_coverage)
        self.pool = BufferPool(
            config.server_buffer_frames, "server-pool", on_evict=self._write_back
        )
        network.register(self.node_id)
        self.dispatcher = RpcDispatcher(self.node_id)
        self._register_handlers()
        network.attach(self.node_id, self.dispatcher)

        #: Connected clients, by id (duck-typed Client objects).
        self._clients: Dict[str, Any] = {}
        #: Which clients cache a copy of each page (coherency tracking).
        #: Maintained through :meth:`_note_caching`, which avoids the
        #: throwaway-set-per-call cost of ``setdefault`` on the page
        #: request hot path.
        self._caching: Dict[int, Set[str]] = {}
        #: Per-client interaction counter driving the Max_LSN piggyback.
        self._interactions: Dict[str, int] = {}
        #: Callback-suppression memo, populated only when lock caching
        #: is off: resources a holder's reduce-callback confirmed it
        #: still locally needs.  With caching off a holder's local need
        #: can only shrink through an event the server witnesses (an
        #: RPC from the holder, or server-side recovery of it), so a
        #: memoized answer stays exact until :meth:`_interaction` or a
        #: ``glm.release_all`` clears it — and re-asking in between is
        #: a pure waste (the reduce-callback RPC storm under hot-key
        #: contention).  With caching *on* the memo must stay empty:
        #: local need then shrinks silently at transaction end, and a
        #: stale "still needed" answer would strand waiters.
        self._lock_needed_memo: Dict[str, Set[Any]] = {}
        #: Address of each client's last complete checkpoint's Begin
        #: record — part of the stable master record.
        self._master: Dict[str, Any] = {
            "server_ckpt_begin_addr": NULL_ADDR,
            "client_ckpts": {},
        }
        #: Conservative per-page redo floors used when a RecLSN cannot be
        #: mapped (rebuilt from checkpoints and restart analysis).
        self._rec_addr_floor: Dict[int, LogAddr] = {}
        #: In-doubt transaction info held for failed clients (section
        #: 2.6.1: handed over when the client reconnects).
        self._indoubt_for_client: Dict[str, List[Tuple[str, Tuple]]] = {}
        #: Dirty pages forwarded client-to-client without passing through
        #: the server (section 4.1 discussion): page id -> (conservative
        #: RecAddr, current holder, page_LSN of the forwarded version).
        #: The server answers for these pages' recovery bounds until it
        #: finally receives a version at least as new.
        self._forwarded_dirty: Dict[int, Tuple[LogAddr, str, LSN]] = {}
        #: Appends since the last automatic checkpoint.
        self._appends_since_ckpt = 0

        self.crashed = False
        #: Attached by the replication manager (repro.replication);
        #: ``None`` keeps every ship hook a single pointer comparison.
        self.replication: Optional[Any] = None
        # Default logical-undo support for the B+-tree: re-traverse from
        # the anchor recorded in the log record's key payload.
        from repro.index.undo import logical_undo_effect
        self.logical_undo_handler: Optional[LogicalUndoHandler] = (
            lambda record, pages: logical_undo_effect(record, pages.fetch)
        )

        # Metrics
        self.wal_forces = 0
        self.pages_served = 0
        self.callbacks_sent = 0
        self.callbacks_suppressed = 0
        self.invalidations_sent = 0
        self.piggybacks_sent = 0
        self.commit_forces = 0
        #: Client-to-client page forwards performed (section 4.1 option).
        self.forwards = 0
        #: Log forces performed for dirty-page privilege transfers.
        self.transfer_forces = 0
        #: Log-replay transport work (the section 5 future-work mode).
        self.materializations = 0
        self.records_replayed_for_materialize = 0
        #: CLRs written while the server performed a normal rollback on a
        #: client's behalf (ESM-CS's server-side rollback; experiment E3).
        self.serverside_undo_records = 0
        self.last_recovery: Optional[RecoveryReport] = None
        self.recovery_reports: List[RecoveryReport] = []

        #: Attached by the owning complex; ``None`` disables the hooks.
        self.tracer: Optional["Tracer"] = None
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional[FaultPlan] = None
        #: Attached by the owning complex; ``None`` disables the runtime
        #: WAL sanitizer (repro.sanitizer).
        self.sanitizer: Optional["Sanitizer"] = None
        #: Attached by the owning complex; ``None`` disables the
        #: recovery histograms / restart progress meter (repro.obs.hist).
        self.metrics: Any = None

    # ------------------------------------------------------------------
    # RPC dispatch table (what clients may invoke on the server)
    # ------------------------------------------------------------------

    def _register_handlers(self) -> None:
        """Register every service a client envelope may name.

        Service methods already take the calling client's id as their
        first parameter, matching the dispatcher's ``handler(sender,
        *args)`` convention, so most register as bound methods.
        """
        d = self.dispatcher
        d.register("acquire_lock", self.acquire_lock)
        d.register("release_lock", self.release_lock)
        d.register("get_page", self.get_page)
        d.register("acquire_update_privilege", self.acquire_update_privilege)
        d.register("release_update_privilege", self.release_update_privilege)
        d.register("receive_log_records", self.receive_log_records)
        d.register("force_log_for_commit", self.force_log_for_commit)
        d.register("log_cdpl", self.log_cdpl)
        d.register("fetch_log_records", self.fetch_log_records)
        d.register("rollback_transaction_serverside",
                   self.rollback_transaction_serverside)
        d.register("receive_dirty_page", self.receive_dirty_page)
        d.register("materialize_page", self.materialize_page)
        d.register("receive_client_checkpoint", self.receive_client_checkpoint)
        d.register("rebuild_page_for_client", self.rebuild_page_for_client)
        d.register("assign_lsn_rpc", self.assign_lsn_rpc)
        d.register("indoubt_info_for",
                   lambda sender: self.indoubt_info_for(sender))
        d.register("flush_page",
                   lambda sender, page_id: self.flush_page(page_id))
        d.register("max_known_page_id",
                   lambda sender: self.max_known_page_id())

    def _client_stub(self, client_id: str) -> RpcStub:
        return self.network.stub(self.node_id, client_id)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    # lint: allow[WAL100] offline formatting: the database predates its first log record
    def bootstrap(self, data_pages: int, free_pages: int = 0) -> List[int]:
        """Create an initial database: ``data_pages`` allocated DATA pages
        plus capacity for ``free_pages`` future allocations.

        Done offline (no logging), like formatting a database before
        first use.  SMPs are laid out per the segment scheme and written
        to disk; free pages are *not* written — they materialize when a
        client allocates and formats them (section 2.3).  Returns the
        allocated data page ids.
        """
        from repro.storage import space_map as sm
        if self.faults is not None:
            self.faults.crashpoint("server.bootstrap.before_format",
                                   self.tracer)
        allocated: List[int] = []
        total_needed = data_pages + free_pages
        covered = 0
        page_id = 0
        smp: Optional[Page] = None
        while covered < total_needed or len(allocated) < data_pages:
            if self.layout.is_smp(page_id):
                if smp is not None:
                    self._disk_write(smp)
                smp = Page(page_id, page_size=self.config.page_size)
                sm.format_smp(smp, self.layout.coverage)
            elif len(allocated) < data_pages:
                page = Page(page_id, PageKind.DATA, self.config.page_size)
                # lint: allow[REC001] offline format: no log exists before first use
                page.format(PageKind.DATA)
                self._disk_write(page)
                assert smp is not None
                sm.set_bit(smp, self.layout.bit_for(page_id), sm.ALLOCATED)
                allocated.append(page_id)
                covered += 1
            else:
                covered += 1  # a free page: laid out but never written
            page_id += 1
        if smp is not None:
            self._disk_write(smp)
        return allocated

    def _disk_write(self, page: Page) -> None:
        """One database-disk page write, retried through the fault
        plane's deterministic transient-I/O policy."""
        if self.faults is not None:
            self.faults.crashpoint("disk.write.before", self.tracer)
        if self.sanitizer is not None:
            self.sanitizer.on_page_externalize(page.page_id, page.page_lsn)
        # lint: allow[REC002] write funnel: callers force first (WAL100 checks them)
        io_retry(self.faults, lambda: self.disk.write_page(page),
                 "disk.write")

    # ------------------------------------------------------------------
    # Client session management
    # ------------------------------------------------------------------

    def connect_client(self, client: Any) -> None:
        self._clients[client.client_id] = client
        self._interactions.setdefault(client.client_id, 0)
        self.tracker.register_client(client.client_id)

    def disconnect_client(self, client_id: str) -> None:
        self._clients.pop(client_id, None)
        self.tracker.forget_client(client_id)

    def operational_clients(self) -> List[str]:
        return sorted(
            client_id for client_id in self._clients
            if self.network.is_up(client_id)
        )

    def _require_up(self) -> None:
        if self.crashed:
            raise NodeUnavailableError(self.node_id)

    def _note_caching(self, page_id: int, client_id: str) -> None:
        """Record that ``client_id`` caches ``page_id``.

        Every page request hits this; the get-then-create keeps the
        steady state (token set exists) free of the throwaway ``set()``
        that ``setdefault`` would allocate per call.
        """
        tokens = self._caching.get(page_id)
        if tokens is None:
            tokens = self._caching[page_id] = set()
        tokens.add(client_id)

    def _interaction(self, client_id: str) -> None:
        """Count a client interaction; piggyback LSN sync periodically.

        The piggyback (section 3) distributes Max_LSN (raising the
        client's Lamport clock) and the current Commit_LSN.  The
        synchronous call doubles as the acknowledgement that lets the
        tracker raise the client's floor.
        """
        # Any RPC from the client may have shrunk its local lock needs
        # (commit, rollback, release); its memoized callback answers
        # are stale from here on.
        self._lock_needed_memo.pop(client_id, None)
        period = self.config.max_lsn_sync_period
        count = self._interactions.get(client_id, 0) + 1
        self._interactions[client_id] = count
        if not self.config.commit_lsn_enabled or period <= 0:
            return
        if count % period == 0:
            self._push_sync(client_id)

    def _push_sync(self, client_id: str) -> None:
        if client_id not in self._clients or not self.network.is_up(client_id):
            return
        max_lsn = self.log.max_lsn_seen
        commit_lsn = self.tracker.commit_lsn()
        if self.config.commit_lsn_per_table:
            args = (max_lsn, commit_lsn,
                    self.tracker.commit_lsn_by_table(),
                    self.tracker.floor_bound())
        else:
            args = (max_lsn, commit_lsn)
        try:
            # Uncharged: the sync piggybacks on the interaction being
            # served (section 3); best-effort under a lossy transport.
            self._client_stub(client_id).call("lsn_sync", MsgType.LSN_SYNC,
                                              args=args, charge=False)
        except NodeUnavailableError:
            return
        self.piggybacks_sent += 1
        self.tracker.note_sync_acknowledged(client_id, max_lsn)

    def broadcast_sync(self) -> None:
        """Push Max_LSN / Commit_LSN to every operational client now."""
        for client_id in self.operational_clients():
            self._push_sync(client_id)

    def current_commit_lsn(self) -> LSN:
        return self.tracker.commit_lsn()

    # ------------------------------------------------------------------
    # Page service and coherency
    # ------------------------------------------------------------------

    def _current_page_bcb(self, page_id: int) -> BufferControlBlock:
        """The server's current version of a page, faulted in if needed.

        A page that has never been written (a free page about to be
        allocated and formatted by a client) materializes as an empty
        frame — the client's format record initializes it without any
        disk read, which is the whole point of section 2.3.
        """
        bcb = self.pool.bcb(page_id)
        if bcb is not None:
            self.pool.get(page_id)  # count the hit, bump LRU
            return bcb
        try:
            page = self.disk.read_page(page_id)
        except PageNotFoundError:
            page = Page(page_id, PageKind.FREE, self.config.page_size)
        except PageCorruptedError:
            page = self._heal_torn_page(page_id)
        self.pool.misses += 1
        return self.pool.admit(page, dirty=False,
                               covered_addr=self.log.end_of_log_addr)

    def max_known_page_id(self) -> int:
        """Upper bound of the laid-out page-id space (for SMP scans)."""
        highest = -1
        for page_id in self.disk.page_ids():
            highest = max(highest, page_id)
        for page_id in self.pool.page_ids():
            highest = max(highest, page_id)
        return highest

    def _demote_update_owner(self, page_id: int, requester: str,
                             release: bool,
                             forward_to: Optional[str] = None) -> bool:
        """Make the current update-privilege owner (if any) safe to read.

        ``release=False`` (a reader appeared): the owner ships the
        current version and *downgrades* X -> S, keeping a valid cached
        copy.  ``release=True`` (another writer appeared): the owner
        ships, drops its copy and releases the P-lock entirely.  With
        ``forward_to`` set (and forwarding enabled), a dirty page travels
        directly owner -> requester instead (section 4.1): the owner's
        log records are acknowledged first, and the server records the
        page in its forwarded-dirty table so recovery bounds survive
        without the image.  A crashed, unrecovered owner is recovered
        first (section 2.6.1), which releases its locks as a side effect.

        Returns True when the page was forwarded (the requester already
        holds the current version; nothing should be shipped to it).
        """
        owner = self.glm.update_privilege_owner(page_id)
        if owner is None or owner == requester or owner == self.node_id:
            return False
        if owner not in self._clients or not self.network.is_up(owner):
            self.recover_failed_client(owner)
            return False
        owner_stub = self._client_stub(owner)
        self.callbacks_sent += 1
        if not release:
            owner_stub.call("downgrade_privilege", MsgType.CALLBACK,
                            payload=page_id, args=(page_id,))
            self.glm.downgrade_p_lock(owner, page_id, LockMode.S)
            return False
        forwarded = False
        if forward_to is not None and forward_to in self._clients \
                and self.network.is_up(forward_to):
            result = owner_stub.call("forward_page", MsgType.CALLBACK,
                                     payload=page_id,
                                     args=(page_id, forward_to))
            if result is not None:
                rec_lsn, version_lsn = result
                rec_addr = self._map_rec_lsn(owner, page_id, rec_lsn)
                bcb = self.pool.bcb(page_id)
                if bcb is not None and bcb.dirty and bcb.rec_addr != NULL_ADDR:
                    rec_addr = min(rec_addr, bcb.rec_addr)
                self._forwarded_dirty[page_id] = (rec_addr, forward_to,
                                                  version_lsn)
                self.forwards += 1
                forwarded = True
            else:
                # The owner's copy was clean: it simply dropped it; the
                # server's version is current.
                pass
        else:
            owner_stub.call("release_privilege", MsgType.CALLBACK,
                            payload=page_id, args=(page_id,))
        self.glm.release_p_lock(owner, page_id)
        # Force the log through the transfer's records (the conservative
        # option of the [MoNa91] fast-transfer family): the new owner's
        # lineage must never rest on log records that can still vanish
        # with a server crash while the old owner is also gone.
        self.log.force()
        self.transfer_forces += 1
        return forwarded

    def get_page(self, client_id: str, page_id: int,
                 cached_lsn: Optional[LSN] = None) -> Optional[Page]:
        """Serve a page copy to a reading client, granting an S P-lock.

        The S P-lock is the cache-coherency token: while the reader holds
        it, no other system can take the update privilege without an
        invalidation callback, so the cached copy stays trustworthy.  If
        another client currently owns the update privilege it is called
        back to push the latest version and downgrade to S first.

        ``cached_lsn`` is the page_LSN of the requester's cached copy, if
        any; when already current the server answers "use yours" (returns
        None) without shipping the image.
        """
        self._require_up()
        self._interaction(client_id)
        self._demote_update_owner(page_id, requester=client_id, release=False)
        self.glm.acquire_p_lock(client_id, page_id, LockMode.S)
        bcb = self._current_page_bcb(page_id)
        self._note_caching(page_id, client_id)
        if cached_lsn is not None and cached_lsn >= bcb.page.page_lsn:
            return None
        self.pages_served += 1
        snapshot = bcb.page.snapshot()
        self.network.send(self.node_id, client_id, MsgType.PAGE_SHIP, snapshot)
        return snapshot

    def acquire_update_privilege(self, client_id: str, page_id: int,
                                 cached_lsn: Optional[LSN] = None) -> Optional[Page]:
        """Grant the update-privilege (X) P-lock, transferring if needed.

        The current X owner (if any) is called back to ship its log
        records and the latest page version before the privilege moves
        (section 2.1: reaching the server's *buffer pool* is sufficient —
        no disk write needed).  Every S-token holder is invalidated: its
        cached copy is about to go stale.  Returns the latest page image
        when the requester's copy is stale, else None.
        """
        self._require_up()
        self._interaction(client_id)
        forward_to = client_id if self.config.enable_forwarding else None
        forwarded = self._demote_update_owner(
            page_id, requester=client_id, release=True, forward_to=forward_to
        )
        for holder in self.glm.p_lock_s_holders(page_id):
            if holder == client_id:
                continue
            if holder in self._clients and self.network.is_up(holder):
                self.invalidations_sent += 1
                self._client_stub(holder).call("invalidate_page",
                                               MsgType.CALLBACK,
                                               payload=page_id,
                                               args=(page_id,))
            self.glm.release_p_lock(holder, page_id)
            tokens = self._caching.get(page_id)
            if tokens is not None:
                tokens.discard(holder)
        self.glm.acquire_p_lock(client_id, page_id, LockMode.X)
        self.glm.note_update_grant(page_id, self.log.end_of_log_addr)
        self._caching[page_id] = {client_id}
        if forwarded:
            # The current version already reached the requester directly;
            # the server's own copy is stale and must not be shipped.
            return None
        bcb = self._current_page_bcb(page_id)
        if cached_lsn is not None and cached_lsn >= bcb.page.page_lsn:
            return None
        self.pages_served += 1
        snapshot = bcb.page.snapshot()
        self.network.send(self.node_id, client_id, MsgType.PAGE_SHIP, snapshot)
        return snapshot

    def release_update_privilege(self, client_id: str, page_id: int) -> None:
        """Voluntary release (the client must have pushed the page first)."""
        self._require_up()
        self.glm.release_p_lock(client_id, page_id)

    # ------------------------------------------------------------------
    # Logical locks
    # ------------------------------------------------------------------

    def acquire_lock(self, client_id: str, resource: Any, mode: LockMode) -> LockMode:
        """GLM request from a client LLM, with cache-callback resolution.

        When the only blockers are other clients' *cached* (locally idle)
        locks, the server calls them back; each relinquishes unless a
        local transaction still holds the resource.
        """
        self._require_up()
        self._interaction(client_id)
        try:
            return self.glm.acquire(client_id, resource, mode)
        except LockConflictError as conflict:
            memoize = not self.config.llm_cache_locks
            if memoize:
                # If any conflicting holder already confirmed (since its
                # last interaction) that it still needs this resource,
                # its hold cannot have shrunk — the retry below would
                # fail regardless, so skip the whole callback round.
                for holder in conflict.holders:
                    still_needed = self._lock_needed_memo.get(holder)
                    if still_needed is not None and resource in still_needed:
                        self.callbacks_suppressed += 1
                        raise
            for holder in conflict.holders:
                if holder not in self._clients or not self.network.is_up(holder):
                    # A failed client's locks are released by its
                    # recovery; until then the requester must wait.
                    raise
                self.callbacks_sent += 1
                # De-escalation: the holder shrinks its cached global
                # lock to what its local transactions still need.
                needed = self._client_stub(holder).call(
                    "reduce_lock", MsgType.CALLBACK,
                    payload=str(resource), args=(resource,),
                )
                if needed is None:
                    self.glm.release(holder, resource)
                else:
                    self.glm.downgrade(holder, resource, needed)
                    if memoize:
                        memo = self._lock_needed_memo.get(holder)
                        if memo is None:
                            memo = self._lock_needed_memo[holder] = set()
                        memo.add(resource)
            # Retry: the conflict may persist (a local holder genuinely
            # needs an incompatible mode), in which case it propagates.
            return self.glm.acquire(client_id, resource, mode)

    def release_lock(self, client_id: str, resource: Any) -> None:
        self._require_up()
        self.glm.release(client_id, resource)

    # ------------------------------------------------------------------
    # Log service
    # ------------------------------------------------------------------

    def receive_log_records(self, client_id: str,
                            records: List[LogRecord]) -> Tuple[List[Tuple[LSN, LogAddr]], LogAddr]:
        """Append a shipped batch; returns (assigned pairs, flushed addr).

        Every record is analyzed for the global transaction tracker
        (section 2.4) — this is how the server can later serve rollback
        fetches and compute Commit_LSN.
        """
        self._require_up()
        self._interaction(client_id)
        if self.faults is not None:
            self.faults.crashpoint("server.log_ship.before_append",
                                   self.tracer)
        assigned = self.log.append_from_client(client_id, records)
        for record, (_, addr) in zip(records, assigned):
            self.tracker.observe(record, addr)
        self._appends_since_ckpt += len(records)
        self._maybe_auto_checkpoint()
        if self.replication is not None:
            self.replication.on_log_appended()
        return assigned, self.log.flushed_addr

    def force_log_for_commit(self, client_id: str, txn_id: str) -> LogAddr:
        """Commit force: everything up to the commit record goes stable.

        Eligible for group-commit deferral: with an open window the
        returned flushed boundary may not cover the commit record yet,
        and the client keeps its records buffered until it does
        (section 2.1) — which is what makes deferral crash-safe.
        """
        self._require_up()
        if self.faults is not None:
            self.faults.crashpoint("server.commit.before_force", self.tracer)
        flushed = self.log.commit_force()
        self.commit_forces += 1
        if self.replication is not None:
            # Synchronous ship-ack at commit force: the commit
            # acknowledgement implies the records are stable at the
            # standby too, which is what the failover durability oracle
            # relies on (no acked commit lost by a promotion).
            self.replication.on_commit_force(flushed)
        return flushed

    def log_cdpl(self, client_id: str, txn_id: str,
                 pages: List[Tuple[int, LSN]]) -> None:
        """ESM-CS baseline: log the Commit Dirty Page List before the
        commit record (section 4.1)."""
        self._require_up()
        entries = tuple(
            DirtyPageEntry(
                page_id=page_id,
                rec_lsn=rec_lsn,
                rec_addr=self._map_rec_lsn(client_id, page_id, rec_lsn),
            )
            for page_id, rec_lsn in pages
        )
        record = CDPLRecord(
            lsn=self.log.clock.next_lsn(NULL_LSN),
            client_id=SERVER_ID,
            txn_id=txn_id,
            prev_lsn=NULL_LSN,
            entries=entries,
        )
        self.log.append_local(record)

    def fetch_log_records(self, client_id: str, txn_id: str,
                          lsns: List[LSN]) -> List[LogRecord]:
        """Serve a rolling-back client records it pruned locally
        (section 2.4: retrieved from the server's log via the tracked
        transaction information)."""
        self._require_up()
        self._interaction(client_id)
        txn = self.tracker.get(txn_id)
        out: List[LogRecord] = []
        for lsn in lsns:
            addr = txn.addr_of(lsn) if txn is not None else None
            if addr is None:
                addr = self._search_log_for(client_id, lsn)
            out.append(self.log.read_at(addr))
        self.network.send(self.node_id, client_id, MsgType.LOG_FETCH, out)
        return out

    def _search_log_for(self, client_id: str, lsn: LSN) -> LogAddr:
        """Last-resort backward search for a record by (client, LSN)."""
        for addr, header in self.log.scan_headers_backward():
            if header.client_id == client_id and header.lsn == lsn:
                return addr
        raise RecoveryError(
            f"log record with LSN {lsn} from {client_id} not found in server log"
        )

    # ------------------------------------------------------------------
    # Server-side rollback (ESM-CS baseline, section 4.1)
    # ------------------------------------------------------------------

    def rollback_transaction_serverside(
        self, client_id: str, txn_id: str, stop_lsn: LSN,
        last_lsn: LSN, undo_next_lsn: LSN,
    ) -> Tuple[LSN, LSN]:
        """Roll back a client transaction on the *server's* page versions.

        This is ESM-CS's design: clients perform no recovery actions, so
        undo must be *conditional* (ARIES-RRH style) — the client never
        forced its pages over, so some updates may be absent from the
        server's versions; a CLR is still written as if the undo was
        performed.  The paper points out this precludes logical undo,
        which is why the B+-tree operations reject this path.

        Returns the transaction's new (last_lsn, undo_next_lsn).
        """
        from repro.core.apply import apply_undo_effect, physical_undo_effect
        from repro.core.log_records import CompensationRecord
        self._require_up()
        tracked = self.tracker.get(txn_id)
        current = undo_next_lsn
        prev = last_lsn
        while current != NULL_LSN and current > stop_lsn:
            addr = tracked.addr_of(current) if tracked is not None else None
            if addr is None:
                addr = self._search_log_for(client_id, current)
            record = self.log.read_at(addr)
            if record.is_clr():
                current = record.undo_next_lsn  # type: ignore[union-attr]
                continue
            assert isinstance(record, UpdateRecord)
            if record.redo_only:
                current = record.prev_lsn
                continue
            if record.undo_is_logical():
                raise RecoveryError(
                    "server-side (conditional) rollback cannot perform "
                    "logical undo — the ESM-CS limitation of section 4.1"
                )
            effect = physical_undo_effect(record)
            page = self._page_for_recovery(effect.page_id, pull_current=False)
            clr_lsn = self.log.clock.next_lsn(page.page_lsn)
            if page.page_lsn >= record.lsn:
                # The update is present in the server's version: real undo.
                apply_undo_effect(page, effect, clr_lsn)
                applied = True
            else:
                # Conditional undo: the update never reached the server;
                # log the CLR as if the undo had been performed.
                applied = False
            clr = CompensationRecord(
                lsn=clr_lsn, client_id=client_id, txn_id=txn_id,
                prev_lsn=prev, undo_next_lsn=record.prev_lsn,
                page_id=effect.page_id, op=effect.op, slot=effect.slot,
                after=effect.after, key=effect.key,
            )
            clr_addr = self.log.append_local(clr)
            self.tracker.observe(clr, clr_addr)
            self.serverside_undo_records += 1
            if applied:
                self._mark_recovered_dirty(effect.page_id, clr_addr)
            prev = clr_lsn
            current = record.prev_lsn
        return prev, current

    # ------------------------------------------------------------------
    # Dirty page reception and WAL
    # ------------------------------------------------------------------

    def _map_rec_lsn(self, client_id: str, page_id: int, rec_lsn: LSN) -> LogAddr:
        """RecLSN -> RecAddr with conservative floors (section 2.5.2).

        For a page whose current dirty version was forwarded between
        clients, the server-side forwarded-dirty bound also applies: the
        reporting client's own LSN space cannot express the previous
        owner's still-unmaterialized updates.
        """
        addr = self.log.addr_for_rec_lsn(client_id, rec_lsn)
        if addr is None:
            addr = self._rec_addr_floor.get(page_id, 0)
        forwarded = self._forwarded_dirty.get(page_id)
        if forwarded is not None:
            addr = min(addr, forwarded[0])
        return addr

    def receive_dirty_page(self, client_id: str, page: Page, rec_lsn: LSN) -> None:
        """A dirty page arrives from a client (eviction, transfer, commit
        policy of a baseline, ...).

        The server maps the accompanying RecLSN to a RecAddr for its BCB
        (keeping an older bound if it already held the page dirty) and
        assigns the conservative ForceAddr — the address of the most
        recent log record received from that client (section 2.2).
        """
        self._require_up()
        force_addr = self.log.force_addr_for_client(client_id)
        rec_addr = self._map_rec_lsn(client_id, page.page_id, rec_lsn)
        self.pool.admit(
            page, dirty=True, rec_lsn=rec_lsn, rec_addr=rec_addr,
            force_addr=force_addr, covered_addr=self.log.end_of_log_addr,
        )
        self._note_caching(page.page_id, client_id)
        forwarded = self._forwarded_dirty.get(page.page_id)
        if forwarded is not None and page.page_lsn >= forwarded[2]:
            # The server now holds a version at least as new as the one
            # that traveled client-to-client; its own (merged) BCB bound
            # takes over the recovery responsibility.
            del self._forwarded_dirty[page.page_id]

    def materialize_page(self, client_id: str, page_id: int,
                         rec_lsn: LSN, version_lsn: LSN) -> int:
        """Log-replay transport: bring the server's copy current from the
        log instead of receiving the image (the paper's future-work mode,
        section 5).

        The client has already shipped every log record for the page
        (WAL-to-server holds unchanged); the server rolls its own copy
        forward from the mapped RecAddr.  ``version_lsn`` is the client
        copy's page_LSN — the materialized copy must reach it, or a log
        record went missing.  Returns the number of records replayed.
        """
        self._require_up()
        self._interaction(client_id)
        force_addr = self.log.force_addr_for_client(client_id)
        rec_addr = self._map_rec_lsn(client_id, page_id, rec_lsn)
        bcb = self._current_page_bcb(page_id)
        applied = self._roll_page_forward(bcb.page, rec_addr)
        if bcb.page.page_lsn < version_lsn:
            raise RecoveryError(
                f"materialize of page {page_id}: replay reached LSN "
                f"{bcb.page.page_lsn}, client version is {version_lsn} — "
                "a log record was not shipped before the page turned clean"
            )
        self.pool.mark_dirty(page_id, rec_lsn=rec_lsn, rec_addr=rec_addr,
                             force_addr=force_addr)
        bcb.covered_addr = max(bcb.covered_addr, self.log.end_of_log_addr)
        self.materializations += 1
        self.records_replayed_for_materialize += applied
        self._note_caching(page_id, client_id)
        forwarded = self._forwarded_dirty.get(page_id)
        if forwarded is not None and bcb.page.page_lsn >= forwarded[2]:
            del self._forwarded_dirty[page_id]
        return applied

    def _write_back(self, bcb: BufferControlBlock) -> None:
        """Steal eviction at the server: WAL, then the disk write."""
        self._flush_bcb(bcb)

    def _flush_bcb(self, bcb: BufferControlBlock) -> None:
        if bcb.force_addr != NULL_ADDR and not self.log.stable.is_stable(bcb.force_addr):
            if self.tracer is not None:
                self.tracer.instant("log", "wal_force_on_evict", "server",
                                    page_id=bcb.page_id,
                                    force_addr=bcb.force_addr)
            if self.faults is not None:
                self.faults.crashpoint("server.flush.before_force",
                                       self.tracer)
            self.log.force(bcb.force_addr)
            self.wal_forces += 1
        if bcb.force_addr != NULL_ADDR and not self.log.stable.is_stable(bcb.force_addr):
            raise WALViolationError(
                f"page {bcb.page_id} would reach disk before log addr {bcb.force_addr}"
            )
        if self.faults is not None:
            self.faults.crashpoint("server.flush.before_write", self.tracer)
        self._disk_write(bcb.page)
        if self.faults is not None:
            self.faults.crashpoint("server.flush.after_write", self.tracer)
        if bcb.covered_addr != NULL_ADDR:
            self.glm.advance_rec_addr(bcb.page_id, bcb.covered_addr)
        bcb.dirty = False
        bcb.rec_lsn = NULL_LSN
        bcb.rec_addr = NULL_ADDR
        bcb.force_addr = NULL_ADDR

    def flush_page(self, page_id: int) -> bool:
        """Write one buffered page to disk (WAL enforced); True if it was dirty."""
        self._require_up()
        bcb = self.pool.bcb(page_id)
        if bcb is None or not bcb.dirty:
            return False
        self._flush_bcb(bcb)
        return True

    def flush_all(self) -> int:
        """Write every dirty buffered page to disk; returns the count."""
        self._require_up()
        count = 0
        for bcb in list(self.pool.dirty_bcbs()):
            self._flush_bcb(bcb)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def _maybe_auto_checkpoint(self) -> None:
        interval = self.config.server_checkpoint_interval
        if interval > 0 and self._appends_since_ckpt >= interval:
            self.take_checkpoint()

    def receive_client_checkpoint(
        self, client_id: str,
        begin: BeginCheckpointRecord,
        end: EndCheckpointRecord,
    ) -> Tuple[List[Tuple[LSN, LogAddr]], LogAddr]:
        """Append a client's checkpoint, rewriting RecLSNs to RecAddrs
        (section 2.6.1), and remember it in the master record."""
        self._require_up()
        self._interaction(client_id)
        begin_addr = self.log.append_from_client(client_id, [begin])[0][1]
        rewritten = end.with_dirty_pages(tuple(
            DirtyPageEntry(
                page_id=entry.page_id,
                rec_lsn=entry.rec_lsn,
                rec_addr=self._map_rec_lsn(client_id, entry.page_id, entry.rec_lsn),
            )
            for entry in end.dirty_pages
        ))
        end_pair = self.log.append_from_client(client_id, [rewritten])[0]
        for entry in rewritten.dirty_pages:
            floor = self._rec_addr_floor.get(entry.page_id)
            if floor is None or entry.rec_addr < floor:
                self._rec_addr_floor[entry.page_id] = entry.rec_addr
        # Force both checkpoint records before the master names their
        # address: a crash truncates the unforced tail and reuses its
        # addresses, so an unforced begin_addr would dangle (REC021).
        if self.faults is not None:
            self.faults.crashpoint("server.client_checkpoint.before_force",
                                   self.tracer)
        self.log.force(end_pair[1])
        if self.faults is not None:
            self.faults.crashpoint("server.client_checkpoint.before_master",
                                   self.tracer)
        self._master["client_ckpts"][client_id] = begin_addr
        self._appends_since_ckpt += 2
        return [(begin.lsn, begin_addr), end_pair], self.log.flushed_addr

    def take_checkpoint(self) -> LogAddr:
        """The coordinated server checkpoint of section 2.7.

        Ordering matters: the Begin record is written, then *all*
        operational clients report their DPLs, and only then is the
        server's own current dirty list merged in — a page pushed back by
        a client between those two events must land in one list or the
        other.  RecLSNs are converted to RecAddrs, minima win, and the
        End record carries the merged DPL plus every in-progress
        transaction known to the tracker.
        """
        self._require_up()
        if self.faults is not None:
            self.faults.crashpoint("server.checkpoint.begin", self.tracer)
        begin = BeginCheckpointRecord(
            lsn=self.log.clock.next_lsn(NULL_LSN),
            client_id=SERVER_ID, txn_id=None, prev_lsn=NULL_LSN,
            owner=SERVER_ID,
        )
        begin_addr = self.log.append_local(begin)

        merged: Dict[int, LogAddr] = {}
        merged_lsn: Dict[int, LSN] = {}

        def merge(page_id: int, rec_addr: LogAddr, rec_lsn: LSN = NULL_LSN) -> None:
            if rec_addr == NULL_ADDR:
                return
            current = merged.get(page_id)
            if current is None or rec_addr < current:
                merged[page_id] = rec_addr
                merged_lsn[page_id] = rec_lsn

        if not self.config.unsafe_server_checkpoint_excludes_clients:
            # Clients first (the paper's ordering requirement).
            for client_id in self.operational_clients():
                dpl = self._client_stub(client_id).call(
                    "report_dirty_pages", MsgType.CHECKPOINT
                )
                # The DPL reply carries real payload: charge it.
                self.network.send(client_id, self.node_id, MsgType.CHECKPOINT, dpl)
                for page_id, rec_lsn in dpl:
                    merge(page_id, self._map_rec_lsn(client_id, page_id, rec_lsn),
                          rec_lsn)
        # Then the server's own *current* dirty list.
        for bcb in self.pool.dirty_bcbs():
            merge(bcb.page_id, bcb.rec_addr, bcb.rec_lsn)
        # And pages whose dirty versions are traveling client-to-client.
        for page_id, (rec_addr, _holder, _lsn) in self._forwarded_dirty.items():
            merge(page_id, rec_addr)

        entries = tuple(
            DirtyPageEntry(page_id=page_id, rec_lsn=merged_lsn[page_id],
                           rec_addr=rec_addr)
            for page_id, rec_addr in sorted(merged.items())
        )
        txn_entries = tuple(
            TxnTableEntry(
                txn_id=txn.txn_id, client_id=txn.client_id, state=txn.state,
                last_lsn=txn.last_lsn, undo_next_lsn=txn.undo_next_lsn,
                first_lsn=txn.first_lsn,
            )
            for txn in sorted(self.tracker.in_progress(), key=lambda t: t.txn_id)
        )
        end = EndCheckpointRecord(
            lsn=self.log.clock.next_lsn(NULL_LSN),
            client_id=SERVER_ID, txn_id=None, prev_lsn=begin.lsn,
            owner=SERVER_ID, dirty_pages=entries, transactions=txn_entries,
        )
        end_addr = self.log.append_local(end)
        if self.faults is not None:
            self.faults.crashpoint("server.checkpoint.before_force",
                                   self.tracer)
        self.log.force(end_addr)
        # The master-record update is the checkpoint's commit point
        # (section 2.5.2): a crash on either side of it must leave a
        # reachable checkpoint — the previous one before, this one after.
        if self.faults is not None:
            self.faults.crashpoint("server.checkpoint.before_master",
                                   self.tracer)
        self._master["server_ckpt_begin_addr"] = begin_addr
        if self.faults is not None:
            self.faults.crashpoint("server.checkpoint.after_master",
                                   self.tracer)
        if self.replication is not None:
            # Checkpoints advance the shipped master copy: a standby
            # bootstrapped from it can start analysis at this begin
            # record even before it builds its own applied checkpoint.
            self.replication.on_log_appended()
        for entry in entries:
            floor = self._rec_addr_floor.get(entry.page_id)
            if floor is None or entry.rec_addr < floor:
                self._rec_addr_floor[entry.page_id] = entry.rec_addr
        self._appends_since_ckpt = 0
        return begin_addr

    # ------------------------------------------------------------------
    # Replication support (DESIGN §15)
    # ------------------------------------------------------------------

    def master_snapshot(self) -> Dict[str, Any]:
        """A copy of the stable master record, safe to ship.

        The master is a two-level structure (scalars plus the per-client
        checkpoint map); copying both levels lets a standby install it
        without aliasing the primary's live state.
        """
        snapshot = dict(self._master)
        snapshot["client_ckpts"] = dict(self._master["client_ckpts"])
        return snapshot

    def adopt_replica_state(self, log: ServerLogManager, disk: Disk,
                            tracker: GlobalTransactionTracker,
                            master: Dict[str, Any]) -> None:
        """Install a standby's replicas as this server's durable state.

        Failover promotion builds a fresh :class:`Server` around the
        standby's log/disk/master replicas and the transaction tracker
        it grew while observing the ship stream, then rolls the
        unapplied log tail forward with :meth:`restart`.  The server is
        left marked crashed on purpose: :meth:`restart` is the only
        legal next step.
        """
        self.log = log
        self.disk = disk
        self.tracker = tracker
        self._master = master
        self.crashed = True

    # ------------------------------------------------------------------
    # Crash and restart (section 2.7)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Everything volatile disappears; disk, stable log and the
        master record survive."""
        self.pool.clear()
        self.glm.clear()
        self.tracker.clear()
        self.log.crash()
        self._caching.clear()
        self._interactions.clear()
        self._lock_needed_memo.clear()
        self._rec_addr_floor.clear()
        self._forwarded_dirty.clear()
        self.crashed = True
        self.network.crash(self.node_id)

    def restart(self, failed_clients: Optional[Set[str]] = None,
                survivor_boundary: Optional[LogAddr] = None,
                log_bookkeeping_intact: bool = False) -> RecoveryReport:
        """Restart recovery after a server crash.

        ``failed_clients`` names clients that went down with (or during)
        the outage; their in-flight transactions are rolled back along
        with the server's own.  Operational clients' transactions are
        left alone — those clients are still running them — and their
        lock state is re-fetched to rebuild the GLM (section 2.7).

        The two extra knobs exist for failover promotion (DESIGN §15),
        where "restart" runs over a standby's log replica rather than
        the crashed primary's own log:

        * ``survivor_boundary`` overrides the stable boundary survivors
          replay against.  The promotion checkpoint is appended to the
          replica *after* shipping stopped, so the replica's flushed
          address overshoots the last byte the old primary actually
          acknowledged; survivors must replay against the pre-checkpoint
          ship high-water instead.
        * ``log_bookkeeping_intact`` skips the whole-log header rescan
          that rebuilds the per-client <LSN, address> pairs: a standby
          observed every shipped record as it arrived, so its transplant
          already carries exact pairs — this skip is a large part of why
          promotion beats a cold restart.
        """
        self.network.restore(self.node_id)
        self.crashed = False
        if failed_clients is None:
            failed_clients = {
                client_id for client_id in self._clients
                if not self.network.is_up(client_id)
            }
        tracer = self.tracer
        root_span = 0
        if tracer is not None:
            root_span = tracer.begin(
                "recovery", "server-restart", "server",
                failed_clients=sorted(failed_clients),
            )

        # Restart orchestration deliberately bypasses the RPC layer:
        # these are out-of-band recovery interactions (the paper never
        # counts them), and modeling their transport is future work.
        # Phase 0: replay the lost log tail from the survivors' buffers.
        # Clients keep every record until it is stable (section 2.1), so
        # nothing appended-but-unforced is truly gone — but the re-append
        # must happen in the ORIGINAL address order merged across
        # clients: per-page log order is application order, and the
        # update privilege may have moved between clients inside the lost
        # tail.
        boundary = (self.log.flushed_addr if survivor_boundary is None
                    else survivor_boundary)
        replay: List[Tuple[LogAddr, str, LogRecord]] = []
        for client_id in sorted(self._clients):
            if not self.network.is_up(client_id):
                continue
            client = self._clients[client_id]
            for old_addr, record in client.log.unstable_records(boundary):
                replay.append((old_addr, client_id, record))
        replay.sort(key=lambda item: item[0])
        for old_addr, client_id, record in replay:
            (lsn, new_addr), = self.log.append_from_client(client_id, [record])
            self._clients[client_id].log.note_replayed(lsn, new_addr)
        # Then every survivor's never-shipped records: with the whole
        # complex's updates in the log BEFORE the analysis scan, the redo
        # pass materializes every lineage tip at the server, and the
        # survivors can afterwards converge on the recovered state
        # (dropping their caches) without losing a byte.  Records for
        # one page live in at most one client's unshipped buffer (a
        # privilege transfer ships them), so per-client FIFO order
        # suffices.
        for client_id in sorted(self._clients):
            if not self.network.is_up(client_id):
                continue
            client = self._clients[client_id]
            batch = client.log.unshipped()
            if batch:
                assigned = self.log.append_from_client(client_id, batch)
                client.log.note_shipped(assigned)

        start_addr = self._master["server_ckpt_begin_addr"]
        if start_addr == NULL_ADDR:
            start_addr = 0
        # Rebuild the volatile per-client <LSN, address> pairs over the
        # *whole* log first: RecLSN -> RecAddr mapping must never return
        # an address later than the true first qualifying record, and
        # surviving clients still hold pages dirtied long before the last
        # checkpoint.  (A production system would persist map summaries
        # with its checkpoints instead of rescanning.)
        if not log_bookkeeping_intact:
            for addr, header in self.log.scan_headers(0, start_addr):
                self.log.observe_during_restart(header.client_id,
                                                header.lsn, addr)

        def _after_analysis(analysis: AnalysisResult) -> None:
            # Re-seed the tracker with in-progress transactions whose
            # records all precede the checkpoint (known only via the
            # checkpoint's transaction table) — Commit_LSN safety for
            # surviving clients.
            for txn in analysis.txns.values():
                if txn.state in ("active", "prepared"):
                    self.tracker.reinstall(
                        txn.txn_id, txn.client_id, txn.state,
                        txn.first_lsn, txn.last_lsn, txn.undo_next_lsn,
                    )
            for page_id, rec_addr in analysis.dpl.items():
                self._rec_addr_floor[page_id] = min(
                    self._rec_addr_floor.get(page_id, rec_addr), rec_addr
                )

        def _restart_losers(
            losers: Dict[str, RestartTxn]) -> Dict[str, RestartTxn]:
            return {
                txn_id: txn for txn_id, txn in losers.items()
                if txn.client_id == SERVER_ID or txn.client_id in failed_clients
            }

        engine = make_engine(self.config.recovery_engine,
                             self.config.recovery_partitions)
        result = engine.run(RecoveryContext(
            log=self.log,
            pages=_ServerPageAccess(self),
            clr_writer=_ServerClrWriter(self),
            kind="server-restart",
            crashpoint_prefix="server.restart",
            analysis_scan_start=start_addr,
            rebuild_log_bookkeeping=True,
            header_observer=self.tracker.observe_header,
            analysis_faults=self.faults,
            logical_undo=self.logical_undo_handler,
            faults=self.faults,
            tracer=tracer,
            metrics=self.metrics,
            analysis_span_attrs={"start_addr": start_addr},
            after_analysis=_after_analysis,
            loser_filter=_restart_losers,
            partitions=self.config.recovery_partitions,
        ))
        analysis, redo, undo = result.analysis, result.redo, result.undo
        self.log.force()

        # Rebuild the volatile lock table and coherency map from the
        # operational clients, and collect in-doubt info for failed ones.
        if self.faults is not None:
            self.faults.crashpoint("server.restart.before_lock_rebuild",
                                   tracer)
        for client_id in sorted(self._clients):
            if self.network.is_up(client_id):
                client = self._clients[client_id]
                self.tracker.register_client(client_id)
                # Converge: the survivor's caches and P-locks are
                # superseded by the recovered server state (every one of
                # its updates is now materialized here); only its logical
                # locks and transaction table carry over.
                client.converge_after_server_restart()
                logical, p_locks, cached = client.report_lock_state()
                self.glm.reinstall_client_locks(client_id, logical, p_locks)
                for page_id in cached:
                    self._note_caching(page_id, client_id)
                client.server_restarted(self.log.flushed_addr)
            else:
                self._stash_indoubt(client_id, analysis)
                self.glm.release_all(client_id)
                self._lock_needed_memo.pop(client_id, None)
                self.tracker.forget_client(client_id)

        report = RecoveryReport(
            kind="server-restart",
            analysis_records=analysis.records_scanned,
            redo_records_scanned=redo.records_scanned,
            redo_considered=redo.records_considered,
            redos_applied=redo.redos_applied,
            undo_records_scanned=undo.records_scanned,
            clrs_written=undo.clrs_written,
            txns_rolled_back=undo.txns_rolled_back,
            dpl_size=len(analysis.dpl),
            engine=result.engine,
            fallback=result.fallback,
        )
        self.last_recovery = report
        self.recovery_reports.append(report)
        if tracer is not None:
            tracer.end(root_span,
                       total_records=report.total_log_records_processed)
        return report

    def _stash_indoubt(self, client_id: str, analysis: AnalysisResult) -> None:
        indoubt = []
        for txn_id, txn in analysis.txns.items():
            if txn.client_id != client_id or txn.state != "prepared":
                continue
            locks: Tuple = ()
            for addr, header in self.log.scan_headers_backward():
                if header.type_tag == "PRE" and header.txn_id == txn_id:
                    record = self.log.read_at(addr)
                    assert isinstance(record, PrepareRecord)
                    locks = record.locks
                    break
            indoubt.append((txn_id, locks,
                            (txn.last_lsn, txn.undo_next_lsn, txn.first_lsn)))
        if indoubt:
            self._indoubt_for_client[client_id] = indoubt

    # ------------------------------------------------------------------
    # Failed-client recovery (sections 2.6.1 / 2.6.2)
    # ------------------------------------------------------------------

    def recover_failed_client(self, client_id: str) -> RecoveryReport:
        """Recover on behalf of a failed client, server-side.

        Analysis/redo/undo over only that client's log records, starting
        from its last complete checkpoint (or, in the section 2.6.2
        variant, from the RecAddrs resident in the GLM lock table).  CLRs
        are written in the failed client's name; afterwards all its locks
        are released and nothing remains for the client to do at
        reconnect beyond in-doubt lock reacquisition.
        """
        self._require_up()
        tracer = self.tracer
        root_span = 0
        if tracer is not None:
            root_span = tracer.begin("recovery", "client-recovery", "server",
                                     client=client_id)

        def _rebuild_forwarded() -> int:
            # Pages whose forwarded dirty versions died with this client
            # must be rebuilt from ALL clients' records — the previous
            # owner's updates never reached the server's copy either.
            # This must happen BEFORE the client-filtered redo: applying
            # the failed client's records onto a version missing its
            # predecessor's updates would stamp a page_LSN that masks
            # them forever.
            forwarded_redos = 0
            for page_id in sorted(self._forwarded_dirty):
                rec_addr, holder, _version = self._forwarded_dirty[page_id]
                if holder != client_id:
                    continue
                page = self._page_for_recovery(page_id)
                forwarded_redos += self._roll_page_forward(page, rec_addr)
                self._mark_recovered_dirty(page_id, rec_addr)
                del self._forwarded_dirty[page_id]
            return forwarded_redos

        ctx = RecoveryContext(
            log=self.log,
            pages=_ServerPageAccess(self),
            clr_writer=_ServerClrWriter(self),
            kind="client-recovery",
            crashpoint_prefix="server.client_recovery",
            client_filter={client_id},
            logical_undo=self.logical_undo_handler,
            faults=self.faults,
            tracer=tracer,
            metrics=self.metrics,
            span_attrs={"client": client_id},
            pre_redo=_rebuild_forwarded,
            partitions=self.config.recovery_partitions,
        )
        if self.config.client_recovery_info is ClientRecoveryInfo.CLIENT_CHECKPOINTS:
            # Section 2.6.1: a real analysis scan from the client's last
            # complete checkpoint (historically armed with no faults).
            ctx.analysis_scan_start = self._master["client_ckpts"].get(
                client_id, 0)
        else:
            # Section 2.6.2: no scan at all — the GLM lock table and the
            # global tracker supply the analysis tables directly.
            ctx.analysis_supplier = (
                lambda: self._client_analysis_from_lock_table(client_id))
        engine = make_engine(self.config.recovery_engine,
                             self.config.recovery_partitions)
        result = engine.run(ctx)
        analysis, redo, undo = result.analysis, result.redo, result.undo
        self.log.force()

        # In-doubt info kept for the reconnecting client (section 2.6.1):
        # the logged lock list plus the LSN chain state the client needs
        # to later roll the branch back if the coordinator says abort.
        indoubt: List[Tuple[str, Tuple, Tuple]] = []
        for addr, header in self.log.scan_headers_backward():
            if header.type_tag == "PRE" and header.client_id == client_id:
                txn = analysis.txns.get(header.txn_id or "")
                if txn is not None and txn.state == "prepared":
                    record = self.log.read_at(addr)
                    assert isinstance(record, PrepareRecord)
                    indoubt.append((record.txn_id, record.locks,
                                    (txn.last_lsn, txn.undo_next_lsn,
                                     txn.first_lsn)))
        if indoubt:
            self._indoubt_for_client[client_id] = indoubt

        # The failed client's lock and cache footprints disappear.
        self.glm.release_all(client_id)
        self.glm.release_all_p_locks(client_id)
        self._lock_needed_memo.pop(client_id, None)
        for caching in self._caching.values():
            caching.discard(client_id)
        self.tracker.drop_transactions_of(client_id)
        self.tracker.forget_client(client_id)

        # Close recovery with a server checkpoint (the ARIES rule).  The
        # redo pass above re-dirtied the failed client's pages at the
        # server from records that PRECEDE the last checkpoint, so no
        # post-checkpoint log record witnesses them: without a fresh DPL
        # a server crash before the next checkpoint would silently skip
        # them during restart redo and lose committed updates.
        if self.faults is not None:
            self.faults.crashpoint("server.client_recovery.before_checkpoint",
                                   tracer)
        self.take_checkpoint()

        report = RecoveryReport(
            kind=f"client-recovery:{client_id}",
            analysis_records=analysis.records_scanned,
            redo_records_scanned=redo.records_scanned,
            redo_considered=redo.records_considered,
            redos_applied=redo.redos_applied,
            undo_records_scanned=undo.records_scanned,
            clrs_written=undo.clrs_written,
            txns_rolled_back=undo.txns_rolled_back,
            dpl_size=len(analysis.dpl),
            engine=result.engine,
            fallback=result.fallback,
        )
        self.last_recovery = report
        self.recovery_reports.append(report)
        if tracer is not None:
            tracer.end(root_span,
                       total_records=report.total_log_records_processed)
        return report

    def _client_analysis_from_lock_table(self, client_id: str) -> AnalysisResult:
        """Section 2.6.2: DPL = pages under the client's update-privilege
        P-locks, RecAddrs from the lock table; transactions from the
        global tracker."""
        result = AnalysisResult(end_addr=self.log.end_of_log_addr)
        for page_id in self.glm.pages_with_update_privilege(client_id):
            rec_addr = self.glm.lock_table_rec_addr(page_id)
            if rec_addr != NULL_ADDR:
                result.dpl[page_id] = rec_addr
        for txn in self.tracker.in_progress():
            if txn.client_id != client_id:
                continue
            result.txns[txn.txn_id] = RestartTxn(
                txn_id=txn.txn_id, client_id=client_id, state=txn.state,
                first_lsn=txn.first_lsn, last_lsn=txn.last_lsn,
                undo_next_lsn=txn.undo_next_lsn,
            )
        result.redo_addr = min(result.dpl.values()) if result.dpl \
            else result.end_addr
        return result

    def indoubt_info_for(self, client_id: str) -> List[Tuple[str, Tuple, Tuple]]:
        """Handed to a reconnecting client (section 2.6.1): per in-doubt
        branch, (txn id, logged lock list, (last_lsn, undo_next_lsn,
        first_lsn))."""
        return self._indoubt_for_client.pop(client_id, [])

    # ------------------------------------------------------------------
    # Page recovery during normal operation (section 2.5)
    # ------------------------------------------------------------------

    def _page_for_recovery(self, page_id: int, pull_current: bool = True) -> Page:
        """The authoritative image for recovery to read and modify.

        If an *operational* client currently owns the page's update
        privilege, its copy is the lineage tip — recovery must pull it in
        (and revoke the privilege) before touching the page, or the
        server would fork a second lineage from its own stale copy
        (section 2.4's "the update privilege would have to be
        reobtained", applied to server-side recovery).  Cached reader
        copies are invalidated for the same reason.

        ``pull_current=False`` is the ESM-CS conditional-undo mode
        (section 4.1): that design deliberately operates on the server's
        own versions without involving clients.
        """
        if pull_current and not self.crashed:
            owner = self.glm.update_privilege_owner(page_id)
            if owner is not None and owner != self.node_id:
                if owner in self._clients and self.network.is_up(owner):
                    self.callbacks_sent += 1
                    self._client_stub(owner).call("release_privilege",
                                                  MsgType.CALLBACK,
                                                  payload=page_id,
                                                  args=(page_id,))
                    self.glm.release_p_lock(owner, page_id)
            for holder in self.glm.p_lock_s_holders(page_id):
                if holder in self._clients and self.network.is_up(holder):
                    self.invalidations_sent += 1
                    self._client_stub(holder).call("invalidate_page",
                                                   MsgType.CALLBACK,
                                                   payload=page_id,
                                                   args=(page_id,))
                self.glm.release_p_lock(holder, page_id)
        bcb = self.pool.bcb(page_id)
        if bcb is not None and not bcb.page.corrupted:
            return bcb.page
        if bcb is not None:
            self.pool.drop(page_id)
        try:
            page = self.disk.read_page(page_id)
        except PageNotFoundError:
            # Never written: redo begins from a fresh frame; the page's
            # format record will initialize it.
            page = Page(page_id, PageKind.FREE, self.config.page_size)
        except PageCorruptedError:
            # The on-disk image is torn (a write died mid-page, section
            # 2.5.3): rebuild from the archive copy / the log before
            # recovery touches the page.
            page = self._heal_torn_page(page_id)
        bcb = self.pool.admit(page, dirty=False)
        return bcb.page

    def _heal_torn_page(self, page_id: int) -> Page:
        """Rebuild a page whose stored image failed its CRC.

        A torn image is the media-failure case of section 2.5.3 with the
        failure detected by checksum instead of by the device: restore
        the archive copy (or start from a fresh frame when the page's
        whole lineage — its format record included — is in the log),
        roll forward, and heal the disk copy under WAL.
        """
        if self.tracer is not None:
            self.tracer.instant("recovery", "torn_page", "server",
                                page_id=page_id)
        if self.archive.has_backup(page_id):
            page, redo_start = self.archive.restore_page(page_id)
        else:
            page = Page(page_id, PageKind.FREE, self.config.page_size)
            redo_start = 0
        self._roll_page_forward(page, redo_start)
        self.log.force(self.log.end_of_log_addr)
        self._disk_write(page)
        return page

    def _mark_recovered_dirty(self, page_id: int, rec_addr: LogAddr) -> None:
        self.pool.mark_dirty(page_id, rec_addr=rec_addr,
                             force_addr=self.log.end_of_log_addr)
        bcb = self.pool.bcb(page_id)
        if bcb is not None:
            bcb.covered_addr = self.log.end_of_log_addr

    def recover_corrupted_page(self, page_id: int) -> Tuple[Page, int]:
        """Section 2.5.1: the server's buffered copy was corrupted by a
        process failure mid-update.

        Takes the uncorrupted disk copy and redoes forward from the BCB's
        RecAddr to end-of-log.  Returns (recovered page, records applied).
        """
        self._require_up()
        bcb = self.pool.bcb(page_id)
        rec_addr = bcb.rec_addr if bcb is not None and bcb.rec_addr != NULL_ADDR \
            else self._rec_addr_floor.get(page_id, 0)
        self.pool.drop(page_id)
        try:
            page = self.disk.read_page(page_id)
        except MediaFailureError:
            return self.media_recover_page(page_id)
        except PageCorruptedError:
            page = self._heal_torn_page(page_id)
        applied = self._roll_page_forward(page, rec_addr)
        self.pool.admit(page, dirty=applied > 0, rec_addr=rec_addr,
                        force_addr=self.log.end_of_log_addr if applied else NULL_ADDR,
                        covered_addr=self.log.end_of_log_addr)
        return page, applied

    def rebuild_page_for_client(self, client_id: str, page_id: int,
                                rec_lsn: LSN) -> Tuple[Page, int]:
        """Section 2.5.2: a client's buffered copy was corrupted.

        The client has already shipped its buffered log records (WAL with
        respect to the server).  The server maps the client's RecLSN to a
        RecAddr, applies the log to its own uncorrupted copy, keeps the
        result (dirty) and ships it back.
        """
        self._require_up()
        self._interaction(client_id)
        rec_addr = self._map_rec_lsn(client_id, page_id, rec_lsn)
        page = self._page_for_recovery(page_id).snapshot()
        applied = self._roll_page_forward(page, rec_addr)
        self.pool.admit(page, dirty=True, rec_lsn=rec_lsn, rec_addr=rec_addr,
                        force_addr=self.log.force_addr_for_client(client_id),
                        covered_addr=self.log.end_of_log_addr)
        snapshot = page.snapshot()
        self.network.send(self.node_id, client_id, MsgType.PAGE_SHIP, snapshot)
        return snapshot, applied

    def media_recover_page(self, page_id: int) -> Tuple[Page, int]:
        """Section 2.5.3: the disk copy is unreadable.

        Restore the archive copy and redo from the address recorded with
        the backup; the recovered image is written back to disk.
        """
        self._require_up()
        if self.faults is not None:
            self.faults.crashpoint("server.media.before_restore", self.tracer)
        page, redo_start = self.archive.restore_page(page_id)
        if self.tracer is not None:
            self.tracer.instant("recovery", "media_recover", "server",
                                page_id=page_id, redo_start=redo_start)
        applied = self._roll_page_forward(page, redo_start)
        # WAL: the roll-forward replays records from the volatile log
        # tail, so the rebuilt image may carry a page_LSN past the
        # forced prefix.  Force through end-of-log before the image
        # reaches disk, or a crash would leave the page ahead of the log.
        self.log.force(self.log.end_of_log_addr)
        if self.faults is not None:
            self.faults.crashpoint("server.media.before_write", self.tracer)
        self._disk_write(page)
        bcb = self.pool.bcb(page_id)
        if bcb is not None:
            bcb.page = page
            self.pool.mark_clean(page_id)
        return page, applied

    def _roll_page_forward(self, page: Page, from_addr: LogAddr) -> int:
        """Apply all missing log records for one page from ``from_addr``."""
        from repro.core.apply import apply_clr_redo, apply_redo
        from repro.core.log_records import CompensationRecord
        applied = 0
        for addr, header in self.log.scan_headers(max(from_addr, 0)):
            if not header.is_redoable():
                continue
            if header.page_id != page.page_id:
                continue
            if page.page_lsn >= header.lsn:
                continue
            record = self.log.read_at(addr)
            if isinstance(record, UpdateRecord):
                apply_redo(page, record)
            else:
                assert isinstance(record, CompensationRecord)
                apply_clr_redo(page, record)
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Log space management
    # ------------------------------------------------------------------

    def compute_truncation_point(self, respect_archive: bool = True) -> LogAddr:
        """The oldest log address any recovery path can still need.

        The minimum over every bound in the system:

        * the server's last checkpoint Begin (restart analysis start);
        * each client's last checkpoint Begin (failed-client analysis);
        * RecAddr of every dirty page — in the server pool, in the
          clients' pools (gathered live, RecLSN-mapped), in the
          forwarded-dirty table, and in GLM lock-table entries (the
          section 2.6.2 variant);
        * the first record of every in-progress transaction (undo's
          backward scan and rollback fetches);
        * optionally the redo-start address of the oldest archive copy
          (media recovery; disable if the archive stores its own log).
        """
        self._require_up()
        bounds: List[LogAddr] = [self.log.flushed_addr]
        master_addr = self._master["server_ckpt_begin_addr"]
        if master_addr != NULL_ADDR:
            bounds.append(master_addr)
        for addr in self._master["client_ckpts"].values():
            bounds.append(addr)
        for bcb in self.pool.dirty_bcbs():
            if bcb.rec_addr != NULL_ADDR:
                bounds.append(bcb.rec_addr)
        for client_id in self.operational_clients():
            dpl = self._client_stub(client_id).call(
                "report_dirty_pages", MsgType.CHECKPOINT
            )
            for page_id, rec_lsn in dpl:
                bounds.append(self._map_rec_lsn(client_id, page_id, rec_lsn))
        for rec_addr, _holder, _lsn in self._forwarded_dirty.values():
            bounds.append(rec_addr)
        for entry in self.glm.physical.entries():
            if entry.rec_addr != NULL_ADDR:
                bounds.append(entry.rec_addr)
        for txn in self.tracker.in_progress():
            if txn.records:
                bounds.append(txn.records[0][1])
        if respect_archive:
            for page_id in list(self.disk.page_ids()):
                if self.archive.has_backup(page_id):
                    __, redo_start = self.archive.restore_page(page_id)
                    bounds.append(redo_start)
        return min(bounds)

    def truncate_log(self, respect_archive: bool = True) -> int:
        """Discard the reclaimable log prefix; returns records dropped."""
        point = self.compute_truncation_point(respect_archive)
        return self.log.stable.truncate_prefix(max(point, 0))

    # ------------------------------------------------------------------
    # Archive (media recovery support)
    # ------------------------------------------------------------------

    def take_backup(self) -> int:
        """Fuzzy archive of the on-disk database (section 2.5.3).

        The redo start address recorded with the copies is the minimum
        RecAddr across every dirty page in the complex — computed by the
        same gather the coordinated checkpoint uses.
        """
        self._require_up()
        bounds: List[LogAddr] = []
        for client_id in self.operational_clients():
            dpl = self._client_stub(client_id).call(
                "report_dirty_pages", MsgType.CHECKPOINT
            )
            for page_id, rec_lsn in dpl:
                bounds.append(self._map_rec_lsn(client_id, page_id, rec_lsn))
        for bcb in self.pool.dirty_bcbs():
            if bcb.rec_addr != NULL_ADDR:
                bounds.append(bcb.rec_addr)
        redo_start = min(bounds) if bounds else self.log.end_of_log_addr
        if self.faults is not None:
            self.faults.crashpoint("server.backup.before_archive",
                                   self.tracer)
        return self.archive.backup_from_disk(self.disk, redo_start)

    # ------------------------------------------------------------------
    # Inspection helpers (tests, oracles, benchmarks)
    # ------------------------------------------------------------------

    def assign_lsn_rpc(self, client_id: str, page_lsn: LSN) -> LSN:
        """The experiment-E10 strawman: a synchronous round trip to the
        server for every LSN, instead of local assignment (section 2.2
        argues one "cannot afford" this)."""
        self._require_up()
        return self.log.clock.next_lsn(page_lsn)

    def authoritative_page(self, page_id: int) -> Page:
        """The server-visible current version (buffer over disk), without
        disturbing LRU/counters.  Test oracle use only."""
        cached = self.pool.peek(page_id)
        if cached is not None:
            return cached
        reads, bytes_read = self.disk.reads, self.disk.bytes_read
        try:
            image = self.disk.read_page(page_id)
        except PageCorruptedError:
            # Even the oracle must never see a torn image: heal it the
            # way an operational read would (section 2.5.3).
            return self._heal_torn_page(page_id)
        finally:
            self.disk.reads, self.disk.bytes_read = reads, bytes_read  # oracle reads are free
        return image
