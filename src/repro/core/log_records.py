"""Log record taxonomy for ARIES/CSA, with a real byte format.

Every mutation in the complex is described by one of the record classes
here.  Records are written by client log managers (buffered in virtual
storage, section 2.1) or by the server's own log manager, and all end up
appended to the single stable log at the server, where they acquire a
**log address** (byte offset).  The LSN inside a record is the update
sequence number assigned locally by the writing system (section 2.2);
the address is assigned by the server on append.

Record kinds
------------

``UpdateRecord``
    A redo-undo (or redo-only) change to one page: record insert /
    modify / delete, space-map allocate / deallocate, page format, and
    the B+-tree operations.  Index operations carry the key so that undo
    can be *logical* (section 1.1.2): at undo time the key may have moved
    to a different page.

``CompensationRecord`` (CLR)
    Redo-only description of one undone update.  Its ``undo_next_lsn``
    points at the predecessor (``prev_lsn``) of the record it compensates,
    which is what bounds logging under repeated failures.

``CommitRecord`` / ``PrepareRecord`` / ``EndRecord``
    Transaction state transitions.  ``EndRecord`` closes a transaction
    after commit processing or after a total rollback.

``BeginCheckpointRecord`` / ``EndCheckpointRecord``
    Written by the server for its own (coordinated) checkpoints and by
    clients for theirs.  A client's End_Checkpoint carries RecLSNs; the
    server rewrites them to RecAddrs before appending (section 2.6.1),
    which is why :class:`DirtyPageEntry` has both fields.

``CDPLRecord``
    The ESM-CS baseline's Commit Dirty Page List (section 4.1), logged by
    the server just before a commit record.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Type

from repro.core import codec
from repro.core.lsn import LSN, LogAddr, NULL_ADDR, NULL_LSN

#: client_id used in records written by the server itself.
SERVER_ID = "SERVER"


class UpdateOp(enum.Enum):
    """The physical operation an update (or CLR) performs on a page."""

    RECORD_INSERT = "rec-insert"
    RECORD_MODIFY = "rec-modify"
    RECORD_DELETE = "rec-delete"
    PAGE_FORMAT = "page-format"
    SMP_ALLOCATE = "smp-allocate"
    SMP_DEALLOCATE = "smp-deallocate"
    INDEX_INSERT = "idx-insert"
    INDEX_DELETE = "idx-delete"
    META_SET = "meta-set"


#: Operations whose undo is logical (re-traverse the index by key) rather
#: than physical (reapply the before-image on the same page/slot).
LOGICAL_UNDO_OPS = frozenset({UpdateOp.INDEX_INSERT, UpdateOp.INDEX_DELETE})


class TxnOutcome(enum.Enum):
    """Terminal state recorded in an :class:`EndRecord`."""

    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class DirtyPageEntry:
    """One dirty-page-list entry inside an End_Checkpoint record.

    ``rec_lsn`` is the client-side bound (no update records for the page
    with LSN <= rec_lsn are missing from the server version); ``rec_addr``
    is the server-side bound in log-address space after the server's
    RecLSN -> RecAddr mapping.  For server-originated entries ``rec_lsn``
    is NULL_LSN and only ``rec_addr`` is meaningful.
    """

    page_id: int
    rec_lsn: LSN = NULL_LSN
    rec_addr: LogAddr = NULL_ADDR


@dataclass(frozen=True)
class TxnTableEntry:
    """One transaction-table entry inside an End_Checkpoint record."""

    txn_id: str
    client_id: str
    state: str
    last_lsn: LSN
    undo_next_lsn: LSN
    first_lsn: LSN


@dataclass(frozen=True)
class LogRecord:
    """Common header shared by all log records."""

    lsn: LSN
    client_id: str
    txn_id: Optional[str]
    prev_lsn: LSN

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def is_update(self) -> bool:
        return isinstance(self, UpdateRecord)

    def is_clr(self) -> bool:
        return isinstance(self, CompensationRecord)

    def is_redoable(self) -> bool:
        """True for records that change a page image (update or CLR)."""
        return isinstance(self, (UpdateRecord, CompensationRecord))


@dataclass(frozen=True)
class UpdateRecord(LogRecord):
    """A change to one page, logged during forward processing.

    ``before`` / ``after`` are physical images of the affected slot (or
    page metadata value for META_SET / page-level ops).  ``redo_only``
    marks records that are never undone individually: page formats and
    structural changes inside nested top actions.  ``key`` is set for
    index operations and names the logical entity for logical undo.
    """

    page_id: int = 0
    op: UpdateOp = UpdateOp.RECORD_MODIFY
    slot: int = -1
    before: Optional[bytes] = None
    after: Optional[bytes] = None
    redo_only: bool = False
    key: Optional[bytes] = None
    page_kind: Optional[str] = None

    def undo_is_logical(self) -> bool:
        return self.op in LOGICAL_UNDO_OPS


@dataclass(frozen=True)
class CompensationRecord(LogRecord):
    """A CLR: redo-only record of one undone update.

    ``undo_next_lsn`` is the LSN of the next record of this transaction
    that remains to be undone — the ``prev_lsn`` of the record this CLR
    compensates.  A *dummy* CLR (``page_id == -1``, ``op is None``) closes
    a nested top action without performing a page change.
    """

    undo_next_lsn: LSN = NULL_LSN
    page_id: int = -1
    op: Optional[UpdateOp] = None
    slot: int = -1
    after: Optional[bytes] = None
    key: Optional[bytes] = None


@dataclass(frozen=True)
class CommitRecord(LogRecord):
    """Transaction commit.  Forced to stable storage before the commit
    is acknowledged to the application (section 2.1)."""


@dataclass(frozen=True)
class PrepareRecord(LogRecord):
    """Two-phase-commit prepare: the transaction becomes in-doubt and is
    *not* rolled back by restart recovery (section 1.1.2).

    The locks the transaction holds are logged with the prepare record so
    the server can hand them back to a recovering client for in-doubt
    reacquisition (section 2.6.1).  Each lock is a (resource-tuple,
    mode-string) pair.
    """

    locks: Tuple = ()


@dataclass(frozen=True)
class EndRecord(LogRecord):
    """Transaction completion (after commit processing or rollback)."""

    outcome: TxnOutcome = TxnOutcome.COMMITTED


@dataclass(frozen=True)
class BeginCheckpointRecord(LogRecord):
    """Start of a checkpoint by ``owner`` (a client id or SERVER_ID)."""

    owner: str = SERVER_ID


@dataclass(frozen=True)
class EndCheckpointRecord(LogRecord):
    """End of a checkpoint: the collected DPL and transaction table."""

    owner: str = SERVER_ID
    dirty_pages: Tuple[DirtyPageEntry, ...] = ()
    transactions: Tuple[TxnTableEntry, ...] = ()

    def with_dirty_pages(self, entries: Tuple[DirtyPageEntry, ...]) -> "EndCheckpointRecord":
        """Return a copy with the DPL replaced.

        Used by the server to substitute RecAddrs for the RecLSNs in a
        client's End_Checkpoint before appending it (section 2.6.1).
        """
        return replace(self, dirty_pages=entries)


@dataclass(frozen=True)
class CDPLRecord(LogRecord):
    """ESM-CS's Commit Dirty Page List, logged before a commit record."""

    entries: Tuple[DirtyPageEntry, ...] = ()


# ---------------------------------------------------------------------------
# Byte format
# ---------------------------------------------------------------------------

_TYPE_TAGS: Dict[str, Type[LogRecord]] = {
    "UPD": UpdateRecord,
    "CLR": CompensationRecord,
    "CMT": CommitRecord,
    "PRE": PrepareRecord,
    "END": EndRecord,
    "BCP": BeginCheckpointRecord,
    "ECP": EndCheckpointRecord,
    "CDP": CDPLRecord,
}
_TAG_BY_TYPE = {cls: tag for tag, cls in _TYPE_TAGS.items()}


def encode_record(record: LogRecord) -> bytes:
    """Serialize a log record to bytes (the stable log stores these)."""
    header = (
        _TAG_BY_TYPE[type(record)],
        record.lsn,
        record.client_id,
        record.txn_id,
        record.prev_lsn,
    )
    body: Tuple = ()
    if isinstance(record, UpdateRecord):
        body = (
            record.page_id,
            record.op.value,
            record.slot,
            record.before,
            record.after,
            record.redo_only,
            record.key,
            record.page_kind,
        )
    elif isinstance(record, CompensationRecord):
        body = (
            record.undo_next_lsn,
            record.page_id,
            record.op.value if record.op is not None else None,
            record.slot,
            record.after,
            record.key,
        )
    elif isinstance(record, PrepareRecord):
        body = (record.locks,)
    elif isinstance(record, EndRecord):
        body = (record.outcome.value,)
    elif isinstance(record, BeginCheckpointRecord):
        body = (record.owner,)
    elif isinstance(record, EndCheckpointRecord):
        body = (
            record.owner,
            tuple(_encode_dpl_entry(e) for e in record.dirty_pages),
            tuple(_encode_txn_entry(t) for t in record.transactions),
        )
    elif isinstance(record, CDPLRecord):
        body = (tuple(_encode_dpl_entry(e) for e in record.entries),)
    return codec.encode(header + body)


def decode_record(data: bytes) -> LogRecord:
    """Deserialize bytes produced by :func:`encode_record`."""
    fields = codec.decode(data)
    tag, lsn, client_id, txn_id, prev_lsn = fields[:5]
    cls = _TYPE_TAGS.get(tag)
    if cls is None:
        raise codec.CodecError(f"unknown log record tag {tag!r}")
    common = dict(lsn=lsn, client_id=client_id, txn_id=txn_id, prev_lsn=prev_lsn)
    body = fields[5:]
    if cls is UpdateRecord:
        page_id, op, slot, before, after, redo_only, key, page_kind = body
        return UpdateRecord(
            page_id=page_id, op=UpdateOp(op), slot=slot, before=before,
            after=after, redo_only=redo_only, key=key, page_kind=page_kind,
            **common,
        )
    if cls is CompensationRecord:
        undo_next_lsn, page_id, op, slot, after, key = body
        return CompensationRecord(
            undo_next_lsn=undo_next_lsn, page_id=page_id,
            op=UpdateOp(op) if op is not None else None,
            slot=slot, after=after, key=key, **common,
        )
    if cls is CommitRecord:
        return CommitRecord(**common)
    if cls is PrepareRecord:
        return PrepareRecord(locks=body[0], **common)
    if cls is EndRecord:
        return EndRecord(outcome=TxnOutcome(body[0]), **common)
    if cls is BeginCheckpointRecord:
        return BeginCheckpointRecord(owner=body[0], **common)
    if cls is EndCheckpointRecord:
        owner, dpl_raw, txn_raw = body
        return EndCheckpointRecord(
            owner=owner,
            dirty_pages=tuple(_decode_dpl_entry(e) for e in dpl_raw),
            transactions=tuple(_decode_txn_entry(t) for t in txn_raw),
            **common,
        )
    if cls is CDPLRecord:
        return CDPLRecord(
            entries=tuple(_decode_dpl_entry(e) for e in body[0]), **common
        )
    raise codec.CodecError(f"unhandled record class {cls.__name__}")


# ---------------------------------------------------------------------------
# Frame headers: lazy decoding for scan-heavy paths
# ---------------------------------------------------------------------------
#
# Every encoded frame opens with the same fixed *field layout* — a
# top-level tuple whose first five items are (type_tag, lsn, client_id,
# txn_id, prev_lsn) — and for the two redoable kinds the body leads with
# the fields recovery filters on (page_id for UPD; undo_next_lsn and
# page_id for CLR).  ``peek_header`` decodes only those fields, so the
# analysis/redo/undo passes can discard non-matching records without
# materializing slot images, lock lists or checkpoint tables.  The byte
# format itself is unchanged: a header peek reads the same bytes a full
# ``decode_record`` would, it just stops early.


class FrameHeader:
    """The filterable prefix of one encoded log record.

    ``page_id`` is ``-1`` for non-page records (matching the dummy-CLR
    convention); ``undo_next_lsn`` is ``NULL_LSN`` except for CLRs;
    ``redo_only`` is ``False`` except for redo-only updates.
    """

    __slots__ = (
        "type_tag", "lsn", "client_id", "txn_id",
        "prev_lsn", "page_id", "undo_next_lsn", "redo_only",
    )

    def __init__(self, type_tag: str, lsn: LSN, client_id: str,
                 txn_id: Optional[str], prev_lsn: LSN,
                 page_id: int = -1, undo_next_lsn: LSN = NULL_LSN,
                 redo_only: bool = False) -> None:
        self.type_tag = type_tag
        self.lsn = lsn
        self.client_id = client_id
        self.txn_id = txn_id
        self.prev_lsn = prev_lsn
        self.page_id = page_id
        self.undo_next_lsn = undo_next_lsn
        self.redo_only = redo_only

    @property
    def record_class(self) -> Type[LogRecord]:
        return _TYPE_TAGS[self.type_tag]

    @property
    def type_name(self) -> str:
        return _TYPE_TAGS[self.type_tag].__name__

    def is_update(self) -> bool:
        return self.type_tag == "UPD"

    def is_clr(self) -> bool:
        return self.type_tag == "CLR"

    def is_redoable(self) -> bool:
        """True for records that change a page image (update or CLR)."""
        return self.type_tag == "UPD" or self.type_tag == "CLR"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameHeader({self.type_tag} lsn={self.lsn} client={self.client_id}"
            f" txn={self.txn_id} prev={self.prev_lsn} page={self.page_id})"
        )


_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")

# Interned type-tag strings keyed by raw bytes, so the fast path never
# allocates for the tag.  Unknown tags fall through to the slow path,
# which reports them like decode_record would.
_TAG_BYTES_CACHE: Dict[bytes, str] = {tag.encode("ascii"): tag for tag in _TYPE_TAGS}

# Client/transaction ids repeat across millions of frames; cache their
# utf-8 decoding (bounded — id cardinality is tiny, but a scan over a
# hostile buffer must not grow this without limit).
_ID_CACHE: Dict[bytes, str] = {}
_ID_CACHE_LIMIT = 4096


def _decode_id(raw: bytes) -> str:
    cached = _ID_CACHE.get(raw)
    if cached is None:
        cached = raw.decode("utf-8")
        if len(_ID_CACHE) >= _ID_CACHE_LIMIT:
            _ID_CACHE.clear()
        _ID_CACHE[raw] = cached
    return cached


def peek_header(frame: codec.Buffer) -> FrameHeader:
    """Decode only the header fields of an encoded record frame.

    Agrees with :func:`decode_record` on every shared field (property
    tested) at a fraction of the cost.  Raises :class:`codec.CodecError`
    on malformed input, like a full decode would.
    """
    return peek_header_in(frame, 0, len(frame))


def peek_header_in(buf: codec.Buffer, start: int, end: int) -> FrameHeader:
    """Like :func:`peek_header` for a frame at ``[start, end)`` inside a
    larger buffer — the stable log peeks frames in place, with no slice.
    """
    header = _peek_fast(buf, start, end)
    if header is None:
        header = _peek_slow(bytes(buf[start:end]))
    return header


def _peek_fast(buf: codec.Buffer, off: int, end: int) -> Optional[FrameHeader]:
    """Straight-line parse of the common encoding; None on any surprise.

    "Surprise" covers both malformed input and rare-but-legal encodings
    (BIGINT lsns, non-str txn ids) — the slow path sorts out which.
    """
    try:
        # Top-level tuple tag + item count.
        if buf[off] != codec.ORD_TUPLE:
            return None
        off += 5
        # Item 0: type tag, a 3-byte string.
        if buf[off] != codec.ORD_STR:
            return None
        length = _U32.unpack_from(buf, off + 1)[0]
        type_tag = _TAG_BYTES_CACHE.get(bytes(buf[off + 5:off + 5 + length]))
        if type_tag is None:
            return None
        off += 5 + length
        # Items 1 and 3 onward follow the same shapes; small helpers
        # would cost a call each per frame, so this stays inline.
        if buf[off] != codec.ORD_INT:
            return None
        lsn = _I64.unpack_from(buf, off + 1)[0]
        off += 9
        if buf[off] != codec.ORD_STR:
            return None
        length = _U32.unpack_from(buf, off + 1)[0]
        client_id = _decode_id(bytes(buf[off + 5:off + 5 + length]))
        off += 5 + length
        txn_id: Optional[str]
        tag = buf[off]
        if tag == codec.ORD_NONE:
            txn_id = None
            off += 1
        elif tag == codec.ORD_STR:
            length = _U32.unpack_from(buf, off + 1)[0]
            txn_id = _decode_id(bytes(buf[off + 5:off + 5 + length]))
            off += 5 + length
        else:
            return None
        if buf[off] != codec.ORD_INT:
            return None
        prev_lsn = _I64.unpack_from(buf, off + 1)[0]
        off += 9
        if off > end:
            return None

        if type_tag == "UPD":
            if buf[off] != codec.ORD_INT:
                return None
            page_id = _I64.unpack_from(buf, off + 1)[0]
            off += 9
            # Skip op, slot, before, after to reach redo_only.
            for _ in range(4):
                off = codec.skip_value_at(buf, off, end)
            tag = buf[off]
            if tag == codec.ORD_TRUE:
                redo_only = True
            elif tag == codec.ORD_FALSE:
                redo_only = False
            else:
                return None
            if off >= end:
                return None
            return FrameHeader(type_tag, lsn, client_id, txn_id, prev_lsn,
                               page_id=page_id, redo_only=redo_only)
        if type_tag == "CLR":
            if buf[off] != codec.ORD_INT:
                return None
            undo_next_lsn = _I64.unpack_from(buf, off + 1)[0]
            if buf[off + 9] != codec.ORD_INT:
                return None
            page_id = _I64.unpack_from(buf, off + 10)[0]
            if off + 18 > end:
                return None
            return FrameHeader(type_tag, lsn, client_id, txn_id, prev_lsn,
                               page_id=page_id, undo_next_lsn=undo_next_lsn)
        return FrameHeader(type_tag, lsn, client_id, txn_id, prev_lsn)
    except (IndexError, struct.error, codec.CodecError):
        return None


def _peek_slow(frame: bytes) -> FrameHeader:
    """Codec-driven fallback for encodings the fast path declines
    (BIGINT fields, unusual id types) — and the arbiter of malformed
    input, raising the same :class:`codec.CodecError` a decode would.
    """
    if len(frame) < 5 or frame[0] != codec.ORD_TUPLE:
        raise codec.CodecError("frame does not start with a record tuple")
    count = _U32.unpack_from(frame, 1)[0]
    if count < 5:
        raise codec.CodecError(f"record tuple has only {count} fields")
    off = 5
    fields = []
    for _ in range(5):
        value, off = codec.decode_value_at(frame, off)
        fields.append(value)
    type_tag, lsn, client_id, txn_id, prev_lsn = fields
    if _TYPE_TAGS.get(type_tag) is None:
        raise codec.CodecError(f"unknown log record tag {type_tag!r}")
    page_id = -1
    undo_next_lsn: LSN = NULL_LSN
    redo_only = False
    if type_tag == "UPD":
        page_id, off = codec.decode_value_at(frame, off)
        for _ in range(4):
            off = codec.skip_value_at(frame, off, len(frame))
        redo_only, off = codec.decode_value_at(frame, off)
    elif type_tag == "CLR":
        undo_next_lsn, off = codec.decode_value_at(frame, off)
        page_id, off = codec.decode_value_at(frame, off)
    return FrameHeader(type_tag, lsn, client_id, txn_id, prev_lsn,
                       page_id=page_id, undo_next_lsn=undo_next_lsn,
                       redo_only=bool(redo_only))


def _encode_dpl_entry(entry: DirtyPageEntry) -> Tuple:
    return (entry.page_id, entry.rec_lsn, entry.rec_addr)


def _decode_dpl_entry(raw: Tuple) -> DirtyPageEntry:
    return DirtyPageEntry(page_id=raw[0], rec_lsn=raw[1], rec_addr=raw[2])


def _encode_txn_entry(entry: TxnTableEntry) -> Tuple:
    return (
        entry.txn_id,
        entry.client_id,
        entry.state,
        entry.last_lsn,
        entry.undo_next_lsn,
        entry.first_lsn,
    )


def _decode_txn_entry(raw: Tuple) -> TxnTableEntry:
    return TxnTableEntry(
        txn_id=raw[0], client_id=raw[1], state=raw[2],
        last_lsn=raw[3], undo_next_lsn=raw[4], first_lsn=raw[5],
    )
