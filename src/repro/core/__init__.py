"""ARIES/CSA core: LSNs, log records, clients, server, recovery passes."""

from repro.core.client import Client
from repro.core.client_log import ClientLogManager
from repro.core.coordinator import GlobalTransaction, TwoPhaseCoordinator
from repro.core.commit_lsn import GlobalTransactionTracker
from repro.core.log_records import (
    BeginCheckpointRecord,
    CDPLRecord,
    CommitRecord,
    CompensationRecord,
    DirtyPageEntry,
    EndCheckpointRecord,
    EndRecord,
    LogRecord,
    PrepareRecord,
    SERVER_ID,
    TxnOutcome,
    TxnTableEntry,
    UpdateOp,
    UpdateRecord,
    decode_record,
    encode_record,
)
from repro.core.lsn import LSN, LogAddr, LsnClock, NULL_ADDR, NULL_LSN
from repro.core.recovery import (
    AnalysisResult,
    RestartTxn,
    analysis_pass,
    redo_pass,
    undo_pass,
)
from repro.core.server import RecoveryReport, Server
from repro.core.server_log import ServerLogManager
from repro.core.system import ClientServerSystem
from repro.core.transaction import (
    Savepoint,
    Transaction,
    TransactionTable,
    TxnState,
)

__all__ = [
    "AnalysisResult",
    "BeginCheckpointRecord",
    "CDPLRecord",
    "Client",
    "ClientLogManager",
    "ClientServerSystem",
    "CommitRecord",
    "CompensationRecord",
    "DirtyPageEntry",
    "EndCheckpointRecord",
    "EndRecord",
    "GlobalTransaction",
    "GlobalTransactionTracker",
    "TwoPhaseCoordinator",
    "LSN",
    "LogAddr",
    "LogRecord",
    "LsnClock",
    "NULL_ADDR",
    "NULL_LSN",
    "PrepareRecord",
    "RecoveryReport",
    "RestartTxn",
    "SERVER_ID",
    "Savepoint",
    "Server",
    "ServerLogManager",
    "Transaction",
    "TransactionTable",
    "TxnOutcome",
    "TxnState",
    "TxnTableEntry",
    "UpdateOp",
    "UpdateRecord",
    "analysis_pass",
    "decode_record",
    "encode_record",
    "redo_pass",
    "undo_pass",
]
