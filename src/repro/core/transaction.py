"""Transactions: states, savepoints, undo chains.

A transaction executes in its entirety at one client (section 2.1).  The
client's transaction table tracks, per transaction, the LSN chain the
undo machinery walks: ``last_lsn`` (most recent record), ``undo_next_lsn``
(next record still to be undone — diverges from ``last_lsn`` once CLRs
exist), and ``first_lsn`` (feeds the Commit_LSN computation of section 3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.log_records import TxnTableEntry
from repro.core.lsn import LSN, NULL_LSN
from repro.errors import SavepointError, TransactionStateError, UnknownTransactionError


class TxnState(enum.Enum):
    ACTIVE = "active"
    #: Two-phase-commit in-doubt: survives restart, not rolled back.
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Savepoint:
    """A point a transaction can partially roll back to (section 2.4)."""

    name: str
    #: LSN of the transaction's last record when the savepoint was set;
    #: partial rollback undoes records with LSN greater than this.
    lsn: LSN


@dataclass
class Transaction:
    """One transaction's volatile control block."""

    txn_id: str
    client_id: str
    state: TxnState = TxnState.ACTIVE
    first_lsn: LSN = NULL_LSN
    last_lsn: LSN = NULL_LSN
    undo_next_lsn: LSN = NULL_LSN
    savepoints: List[Savepoint] = field(default_factory=list)
    #: Pages this transaction has modified (drives ESM-CS's CDPL and
    #: force-to-server-at-commit set).
    pages_modified: Set[int] = field(default_factory=set)
    updates_logged: int = 0
    #: Monotone birth order, used as deadlock-victim cost tie-breaker.
    seq: int = 0

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    def note_logged(self, lsn: LSN, page_id: Optional[int] = None,
                    redo_only: bool = False) -> None:
        """Bookkeeping after a forward-processing record is written.

        Redo-only records (page formats, nested-top-action pieces) are
        never undone individually, so they do not advance UndoNxtLSN —
        the undo chain steps over them via their PrevLSN.
        """
        if self.first_lsn == NULL_LSN:
            self.first_lsn = lsn
        self.last_lsn = lsn
        if not redo_only:
            self.undo_next_lsn = lsn
        self.updates_logged += 1
        if page_id is not None and page_id >= 0:
            self.pages_modified.add(page_id)

    def note_clr(self, lsn: LSN, undo_next: LSN) -> None:
        """Bookkeeping after a CLR: undo_next jumps past the undone record."""
        if self.first_lsn == NULL_LSN:
            self.first_lsn = lsn
        self.last_lsn = lsn
        self.undo_next_lsn = undo_next

    # -- savepoints ------------------------------------------------------

    def set_savepoint(self, name: str) -> Savepoint:
        self.require_active()
        savepoint = Savepoint(name, self.last_lsn)
        self.savepoints.append(savepoint)
        return savepoint

    def find_savepoint(self, name: str) -> Savepoint:
        for savepoint in reversed(self.savepoints):
            if savepoint.name == name:
                return savepoint
        raise SavepointError(f"transaction {self.txn_id}: no savepoint {name!r}")

    def discard_savepoints_after(self, savepoint: Savepoint) -> None:
        """Rolling back to a savepoint invalidates later savepoints."""
        index = self.savepoints.index(savepoint)
        del self.savepoints[index + 1:]

    def to_table_entry(self) -> TxnTableEntry:
        return TxnTableEntry(
            txn_id=self.txn_id,
            client_id=self.client_id,
            state=self.state.value,
            last_lsn=self.last_lsn,
            undo_next_lsn=self.undo_next_lsn,
            first_lsn=self.first_lsn,
        )


class TransactionTable:
    """A node's table of known transactions."""

    _seq = itertools.count(1)

    def __init__(self, owner_id: str) -> None:
        self.owner_id = owner_id
        self._txns: Dict[str, Transaction] = {}
        self._next_local = itertools.count(1)

    def begin(self, txn_id: Optional[str] = None) -> Transaction:
        if txn_id is None:
            txn_id = f"{self.owner_id}.T{next(self._next_local)}"
        if txn_id in self._txns:
            raise TransactionStateError(f"transaction id {txn_id} already in use")
        txn = Transaction(txn_id, self.owner_id, seq=next(TransactionTable._seq))
        self._txns[txn_id] = txn
        return txn

    def get(self, txn_id: str) -> Transaction:
        try:
            return self._txns[txn_id]
        except KeyError:
            raise UnknownTransactionError(txn_id) from None

    def maybe_get(self, txn_id: str) -> Optional[Transaction]:
        return self._txns.get(txn_id)

    def remove(self, txn_id: str) -> None:
        self._txns.pop(txn_id, None)

    def active(self) -> List[Transaction]:
        return [t for t in self._txns.values() if t.state is TxnState.ACTIVE]

    def in_flight(self) -> List[Transaction]:
        """Transactions restart undo must roll back: active, not prepared."""
        return [t for t in self._txns.values() if t.state is TxnState.ACTIVE]

    def prepared(self) -> List[Transaction]:
        return [t for t in self._txns.values() if t.state is TxnState.PREPARED]

    def all_txns(self) -> List[Transaction]:
        return list(self._txns.values())

    def to_table_entries(self) -> Tuple[TxnTableEntry, ...]:
        """Snapshot for an End_Checkpoint record: unterminated txns only."""
        return tuple(
            txn.to_table_entry()
            for txn in self._txns.values()
            if txn.state in (TxnState.ACTIVE, TxnState.PREPARED)
        )

    def oldest_active_first_lsn(self) -> LSN:
        """Minimum first_lsn over update transactions still unterminated.

        NULL_LSN means "no update transaction in progress here".
        Read-only transactions (first_lsn == NULL_LSN) do not constrain
        Commit_LSN.
        """
        lsns = [
            txn.first_lsn
            for txn in self._txns.values()
            if txn.state in (TxnState.ACTIVE, TxnState.PREPARED)
            and txn.first_lsn != NULL_LSN
        ]
        return min(lsns) if lsns else NULL_LSN

    def clear(self) -> None:
        self._txns.clear()

    def __len__(self) -> int:
        return len(self._txns)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(list(self._txns.values()))
