"""Applying log records to pages: redo, physical undo, CLR redo.

This is the single implementation of "what an update means", shared by
forward processing, normal rollback, and every recovery pass — the
repeating-history discipline of ARIES depends on redo reproducing
exactly the change forward processing made.

Redo is page-oriented and conditional on ``page_LSN < record.LSN``
(section 1.1.1's monotonic page_LSN is what makes this test valid even
though LSNs are no longer log addresses).  Undo of record operations is
physical; undo of index operations is *logical* (section 1.1.2) and
lives with the B+-tree — here we only supply the physical pieces and the
CLR construction they share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import codec
from repro.core.log_records import CompensationRecord, UpdateOp, UpdateRecord
from repro.core.lsn import LSN
from repro.errors import RecoveryInvariantError
from repro.storage import space_map
from repro.storage.page import Page, PageKind


def redo_needed(page: Page, record_lsn: LSN) -> bool:
    """The ARIES redo test: is the record's effect missing from this image?"""
    return page.page_lsn < record_lsn


def apply_redo(page: Page, record: UpdateRecord) -> None:
    """Apply an update record's forward effect to ``page``.

    The caller must have checked :func:`redo_needed`; applying blindly
    would corrupt the slotted structure (e.g. double insert).  Sets
    page_LSN to the record's LSN.
    """
    _apply_op(page, record.op, record.slot, record.after, record.key,
              record.page_kind)
    page.page_lsn = record.lsn


def apply_clr_redo(page: Page, clr: CompensationRecord) -> None:
    """Apply a CLR's (compensating) effect to ``page``.

    CLRs are redo-only: this is the only way their change is ever made.
    """
    if clr.op is None:
        raise RecoveryInvariantError(
            f"dummy CLR {clr.lsn} has no page effect to apply"
        )
    _apply_op(page, clr.op, clr.slot, clr.after, clr.key, None)
    page.page_lsn = clr.lsn


@dataclass(frozen=True)
class UndoEffect:
    """What undoing one update record does, expressed as CLR ingredients.

    ``op``/``slot``/``after`` describe the *compensating* physical change
    (so a CLR built from them redoes the undo); ``page_id`` may differ
    from the original record's page for logical undo.
    """

    page_id: int
    op: UpdateOp
    slot: int
    after: Optional[bytes]
    key: Optional[bytes] = None


#: Inverse physical operation per forward operation.
_PHYSICAL_INVERSE = {
    UpdateOp.RECORD_INSERT: UpdateOp.RECORD_DELETE,
    UpdateOp.RECORD_MODIFY: UpdateOp.RECORD_MODIFY,
    UpdateOp.RECORD_DELETE: UpdateOp.RECORD_INSERT,
    UpdateOp.SMP_ALLOCATE: UpdateOp.SMP_DEALLOCATE,
    UpdateOp.SMP_DEALLOCATE: UpdateOp.SMP_ALLOCATE,
    UpdateOp.META_SET: UpdateOp.META_SET,
    UpdateOp.INDEX_INSERT: UpdateOp.INDEX_DELETE,
    UpdateOp.INDEX_DELETE: UpdateOp.INDEX_INSERT,
}


def physical_undo_effect(record: UpdateRecord) -> UndoEffect:
    """Compute the compensating change for a physically undoable record.

    Raises for redo-only records (page formats, nested-top-action pieces)
    — those are never undone individually.
    """
    if record.redo_only:
        raise RecoveryInvariantError(
            f"record {record.lsn} ({record.op.value}) is redo-only, cannot undo"
        )
    if record.op is UpdateOp.PAGE_FORMAT:
        raise RecoveryInvariantError("page formats are redo-only")
    inverse = _PHYSICAL_INVERSE[record.op]
    if record.op in (UpdateOp.RECORD_INSERT, UpdateOp.INDEX_INSERT):
        after = None
    elif record.op in (UpdateOp.RECORD_DELETE, UpdateOp.INDEX_DELETE,
                       UpdateOp.RECORD_MODIFY, UpdateOp.META_SET):
        after = record.before
    elif record.op is UpdateOp.SMP_ALLOCATE:
        after = bytes([space_map.FREE])
    else:  # SMP_DEALLOCATE
        after = bytes([space_map.ALLOCATED])
    return UndoEffect(
        page_id=record.page_id, op=inverse, slot=record.slot,
        after=after, key=record.key,
    )


def apply_undo_effect(page: Page, effect: UndoEffect, clr_lsn: LSN) -> None:
    """Perform the compensating change and stamp the CLR's LSN."""
    _apply_op(page, effect.op, effect.slot, effect.after, effect.key, None)
    page.page_lsn = clr_lsn


# ---------------------------------------------------------------------------
# The single op executor
# ---------------------------------------------------------------------------

def _apply_op(page: Page, op: UpdateOp, slot: int,
              after: Optional[bytes], key: Optional[bytes],
              page_kind: Optional[str]) -> None:
    if op is UpdateOp.PAGE_FORMAT:
        if page_kind is None:
            raise RecoveryInvariantError("page-format record lacks a page kind")
        kind = PageKind(page_kind)
        # The LSN is stamped by the caller; formatting resets content only.
        page.format(kind, page_lsn=page.page_lsn)
        if kind is PageKind.SPACE_MAP:
            coverage = len(after) if after else 0
            space_map.format_smp(page, coverage)
        elif after:
            # Non-SMP formats may carry initial meta (e.g. index level).
            for meta_key, meta_value in codec.decode(after):
                page.set_meta(meta_key, meta_value)
        return
    if op in (UpdateOp.RECORD_INSERT, UpdateOp.INDEX_INSERT):
        if after is None:
            raise RecoveryInvariantError("insert op lacks an after-image")
        page.insert_record(after, slot=slot)
        return
    if op in (UpdateOp.RECORD_MODIFY,):
        if after is None:
            raise RecoveryInvariantError("modify op lacks an after-image")
        page.modify_record(slot, after)
        return
    if op in (UpdateOp.RECORD_DELETE, UpdateOp.INDEX_DELETE):
        page.delete_record(slot)
        return
    if op in (UpdateOp.SMP_ALLOCATE, UpdateOp.SMP_DEALLOCATE):
        state = space_map.ALLOCATED if op is UpdateOp.SMP_ALLOCATE else space_map.FREE
        space_map.set_bit(page, slot, state)
        return
    if op is UpdateOp.META_SET:
        if key is None:
            raise RecoveryInvariantError("meta-set op lacks a key")
        value = codec.decode(after) if after is not None else None
        page.set_meta(key.decode("utf-8"), value)
        return
    raise RecoveryInvariantError(f"unhandled update op {op}")
