"""Global transaction tracking and the Commit_LSN optimization (section 3).

Whenever a client log record is appended, the server analyzes it to
maintain information about transactions active anywhere in the complex
(section 2.4).  Two consumers:

* **rollback service** — a client rolling back may have pruned records
  from its virtual-storage buffer; the tracker knows each live
  transaction's (LSN, address) pairs so the server can hand records back;
* **Commit_LSN** — the LSN of the first record of the oldest update
  transaction still executing anywhere.  Every page whose page_LSN is
  below it provably holds only committed data, so readers can skip
  record locks for committed-data checks.

Safety with unshipped work.  A client may hold log records (and whole
transactions) the server has never seen.  Their LSNs are strictly
greater than the largest LSN the server has observed from that client
*or* pushed to it via a Max_LSN sync it acknowledged — the client's
**floor**.  Commit_LSN is therefore::

    min( min first_lsn over known in-progress update txns,
         min over clients (floor_of_client) + 1 )

which stays a valid lower bound no matter what is still buffered at the
clients.  Raising floors is exactly what the section 3 Lamport piggyback
achieves, and experiment E4 measures how the sync period moves the
achievable Commit_LSN and with it the fraction of lock calls avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.log_records import (
    CommitRecord,
    CompensationRecord,
    EndRecord,
    FrameHeader,
    LogRecord,
    PrepareRecord,
    UpdateRecord,
)
from repro.core.lsn import LSN, LogAddr, NULL_LSN


@dataclass
class TrackedTransaction:
    """Server-side knowledge of one transaction somewhere in the complex."""

    txn_id: str
    client_id: str
    state: str = "active"
    first_lsn: LSN = NULL_LSN
    last_lsn: LSN = NULL_LSN
    #: Tables this transaction has updated (for per-table Commit_LSN,
    #: the "per-file basis" refinement section 3 points at).
    tables: set = field(default_factory=set)
    #: Next record to undo if this transaction must be rolled back; kept
    #: so the section 2.6.2 variant can recover a failed client without
    #: any client checkpoint to analyze from.
    undo_next_lsn: LSN = NULL_LSN
    #: (lsn, addr) of every record seen, newest last; serves rollback fetches.
    records: List[Tuple[LSN, LogAddr]] = field(default_factory=list)

    def addr_of(self, lsn: LSN) -> Optional[LogAddr]:
        for rec_lsn, addr in reversed(self.records):
            if rec_lsn == lsn:
                return addr
        return None


class GlobalTransactionTracker:
    """The server's view of every transaction in the complex."""

    def __init__(self) -> None:
        self._txns: Dict[str, TrackedTransaction] = {}
        #: Per client: a lower bound on the client's Local_Max_LSN.
        self._floors: Dict[str, LSN] = {}
        #: Maps a page id to its table, for per-table Commit_LSN.
        #: Installed by the system catalog; None-returning by default.
        self.table_resolver = lambda page_id: None

    # -- feeding -----------------------------------------------------------

    def register_client(self, client_id: str) -> None:
        self._floors.setdefault(client_id, NULL_LSN)

    def forget_client(self, client_id: str) -> None:
        """A client left the complex; it no longer constrains Commit_LSN."""
        self._floors.pop(client_id, None)

    def observe(self, record: LogRecord, addr: LogAddr) -> None:
        """Analyze one appended record (normal processing or restart)."""
        floor = self._floors.get(record.client_id, NULL_LSN)
        if record.lsn > floor:
            self._floors[record.client_id] = record.lsn
        txn_id = record.txn_id
        if txn_id is None:
            return
        txn = self._txns.get(txn_id)
        if txn is None:
            txn = TrackedTransaction(txn_id, record.client_id)
            self._txns[txn_id] = txn
        if isinstance(record, (UpdateRecord, CompensationRecord)):
            if txn.first_lsn == NULL_LSN:
                txn.first_lsn = record.lsn
            txn.last_lsn = record.lsn
            txn.records.append((record.lsn, addr))
            if record.page_id >= 0:
                table = self.table_resolver(record.page_id)
                if table is not None:
                    txn.tables.add(table)
            if isinstance(record, CompensationRecord):
                txn.undo_next_lsn = record.undo_next_lsn
            elif not record.redo_only:
                txn.undo_next_lsn = record.lsn
        elif isinstance(record, PrepareRecord):
            txn.state = "prepared"
        elif isinstance(record, CommitRecord):
            txn.state = "committed"
        elif isinstance(record, EndRecord):
            self._txns.pop(txn_id, None)

    def observe_header(self, header: FrameHeader, addr: LogAddr) -> None:
        """``observe`` from a decoded frame header alone.

        Every field the tracker reads lives in the filterable frame
        prefix, so restart analysis can feed the tracker without
        materializing each record — the full decode was a large share
        of restart wall-clock on long logs.  Must stay in lockstep with
        ``observe``.
        """
        floor = self._floors.get(header.client_id, NULL_LSN)
        if header.lsn > floor:
            self._floors[header.client_id] = header.lsn
        txn_id = header.txn_id
        if txn_id is None:
            return
        txn = self._txns.get(txn_id)
        if txn is None:
            txn = TrackedTransaction(txn_id, header.client_id)
            self._txns[txn_id] = txn
        tag = header.type_tag
        if tag == "UPD" or tag == "CLR":
            if txn.first_lsn == NULL_LSN:
                txn.first_lsn = header.lsn
            txn.last_lsn = header.lsn
            txn.records.append((header.lsn, addr))
            if header.page_id >= 0:
                table = self.table_resolver(header.page_id)
                if table is not None:
                    txn.tables.add(table)
            if tag == "CLR":
                txn.undo_next_lsn = header.undo_next_lsn
            elif not header.redo_only:
                txn.undo_next_lsn = header.lsn
        elif tag == "PRE":
            txn.state = "prepared"
        elif tag == "CMT":
            txn.state = "committed"
        elif tag == "END":
            self._txns.pop(txn_id, None)

    def reinstall(self, txn_id: str, client_id: str, state: str,
                  first_lsn: LSN, last_lsn: LSN, undo_next_lsn: LSN) -> None:
        """Re-seed a transaction from checkpoint data after a restart.

        Needed for Commit_LSN safety: a surviving client's transaction
        whose records all precede the server's last checkpoint would
        otherwise be invisible to the tracker, letting Commit_LSN climb
        past its first_lsn and unsafely unlock its uncommitted pages.
        """
        if txn_id in self._txns:
            return
        self._txns[txn_id] = TrackedTransaction(
            txn_id=txn_id, client_id=client_id, state=state,
            first_lsn=first_lsn, last_lsn=last_lsn,
            undo_next_lsn=undo_next_lsn,
        )

    def note_sync_acknowledged(self, client_id: str, max_lsn: LSN) -> None:
        """The client acknowledged a Max_LSN piggyback: its Local_Max_LSN
        is now at least ``max_lsn``, so its floor rises (section 3)."""
        if max_lsn > self._floors.get(client_id, NULL_LSN):
            self._floors[client_id] = max_lsn

    def drop_transactions_of(self, client_id: str) -> List[TrackedTransaction]:
        """Remove (and return) tracked transactions of a failed client."""
        doomed = [t for t in self._txns.values() if t.client_id == client_id]
        for txn in doomed:
            del self._txns[txn.txn_id]
        return doomed

    # -- queries --------------------------------------------------------------

    def get(self, txn_id: str) -> Optional[TrackedTransaction]:
        return self._txns.get(txn_id)

    def in_progress(self) -> List[TrackedTransaction]:
        return [
            t for t in self._txns.values() if t.state in ("active", "prepared")
        ]

    def commit_lsn(self) -> LSN:
        """Compute the current global Commit_LSN (see module docstring)."""
        bounds: List[LSN] = []
        first_lsns = [
            t.first_lsn for t in self._txns.values()
            if t.state in ("active", "prepared") and t.first_lsn != NULL_LSN
        ]
        if first_lsns:
            bounds.append(min(first_lsns))
        if self._floors:
            bounds.append(min(self._floors.values()) + 1)
        return min(bounds) if bounds else NULL_LSN + 1

    def floor_of(self, client_id: str) -> LSN:
        return self._floors.get(client_id, NULL_LSN)

    def floor_bound(self) -> LSN:
        """The floors-only Commit_LSN bound (no active-transaction term).

        Any record still unshipped anywhere has an LSN above its
        client's floor, so this is a safe Commit_LSN for every table no
        known in-progress transaction has updated.
        """
        if not self._floors:
            return NULL_LSN + 1
        return min(self._floors.values()) + 1

    def commit_lsn_by_table(self) -> Dict[str, LSN]:
        """Per-table Commit_LSN values (section 3's per-file refinement).

        Only tables constrained by some in-progress transaction appear;
        every other table's value is :meth:`floor_bound`.  A long update
        transaction on one table therefore no longer drags down lock
        avoidance on the others.
        """
        base = self.floor_bound()
        values: Dict[str, LSN] = {}
        for txn in self._txns.values():
            if txn.state not in ("active", "prepared"):
                continue
            if txn.first_lsn == NULL_LSN:
                continue
            for table in txn.tables:
                bound = min(base, txn.first_lsn)
                current = values.get(table)
                if current is None or bound < current:
                    values[table] = bound
        return values

    # -- crash model ------------------------------------------------------------

    def clear(self) -> None:
        self._txns.clear()
        self._floors.clear()
