"""LSNs, log addresses, and the ARIES/CSA local LSN clock (paper section 2.2).

In single-system ARIES an LSN doubles as the log record's address.  In
ARIES/CSA clients write log records with *no* log disk of their own, so an
LSN is demoted to an **update sequence number**: a value that is
monotonically increasing per page (and, thanks to the assignment rule
below, per client across all pages), while the byte offset in the server's
single log file is a separate **log address** (``LogAddr``).

The assignment rule (section 2.2):

    new_lsn = max(page_lsn_of_updated_page, Local_Max_LSN) + 1

``Local_Max_LSN`` is typically the LSN of the record most recently
appended to the client's log buffer, but it may also be advanced without
writing a record when the server piggybacks its global ``Max_LSN`` — the
Lamport-clock scheme of section 3 that keeps the LSN streams of different
clients close together for the benefit of the Commit_LSN optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: LSNs are plain integers.  0 is the "null" LSN: it is smaller than every
#: real LSN, so a freshly formatted page (page_lsn == 0) always qualifies
#: for redo of its first update.
LSN = int
NULL_LSN: LSN = 0

#: Log addresses are byte offsets into the server's stable log file.
#: -1 is the "null" address, used e.g. for "no checkpoint taken yet".
LogAddr = int
NULL_ADDR: LogAddr = -1


@dataclass
class LsnClock:
    """The per-system LSN generator of ARIES/CSA.

    One instance lives in each client's local log manager and one in the
    server's log manager.  It owns ``Local_Max_LSN`` and implements both
    the update-path assignment rule and the Lamport merge used when the
    server distributes ``Max_LSN``.
    """

    local_max_lsn: LSN = NULL_LSN
    #: Number of times :meth:`observe_max_lsn` actually advanced the clock;
    #: benchmark E4 reports this to show the Lamport scheme at work.
    advances_from_peer: int = field(default=0, compare=False)

    def next_lsn(self, page_lsn: LSN = NULL_LSN) -> LSN:
        """Assign the LSN for a new log record updating a page.

        ``page_lsn`` is the current page_LSN of the page about to be
        updated (pass ``NULL_LSN`` for records not tied to a page, e.g.
        commit records).  The result is strictly greater than both the
        page's LSN and every LSN this system has issued so far, which is
        exactly the per-page and per-system monotonicity the paper's
        recovery argument needs.
        """
        lsn = max(page_lsn, self.local_max_lsn) + 1
        self.local_max_lsn = lsn
        return lsn

    def observe_max_lsn(self, max_lsn: LSN) -> bool:
        """Merge the server-distributed ``Max_LSN`` (Lamport rule).

        Advances ``Local_Max_LSN`` without writing a log record when the
        peer value is larger.  Returns True when the clock moved.
        """
        if max_lsn > self.local_max_lsn:
            self.local_max_lsn = max_lsn
            self.advances_from_peer += 1
            return True
        return False

    def observe_lsn(self, lsn: LSN) -> None:
        """Fold an externally produced LSN into the clock.

        The server uses this while appending client records so that its
        own subsequent records (e.g. server-side transactions, checkpoint
        records) sort after everything it has durably seen.
        """
        if lsn > self.local_max_lsn:
            self.local_max_lsn = lsn
