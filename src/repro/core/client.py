"""The client node: caching, updating, local logging, client-side rollback.

A client (Figure 1) caches pages from the server, updates them in place
under record locks and the page's update-privilege P-lock, produces log
records with *locally assigned* LSNs (section 2.2), buffers those
records in virtual storage, and ships them to the server before any
dirty page travels or at commit — whichever is first (section 2.1).

Clients perform their own total and partial rollbacks (section 2.4),
take periodic checkpoints (section 2.6.1), and honor the server's
coherency callbacks (push current version / release privilege /
invalidate) and Max_LSN–Commit_LSN piggybacks (section 3).

All client->server interactions travel as typed RPC envelopes through
``self.rpc`` (a :class:`~repro.net.rpc.RpcStub`); the server reaches
this client through the dispatch table registered in
:meth:`Client._register_handlers`.  The only remaining direct use of
the server object is session establishment (``connect_client``) and the
static page layout — simulation scaffolding outside the message model.

The policy knobs of :class:`repro.config.SystemConfig` turn the same
class into the paper's comparison systems: ESM-CS's force-to-server +
purge at commit with server-side rollback, and the ObjectStore-style
force-to-disk commit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.config import (
    CommitCachePolicy,
    CommitPagePolicy,
    LockGranularity,
    LsnAssignment,
    PageTransport,
    RollbackSite,
    SystemConfig,
)
from repro.core.apply import (
    UndoEffect,
    apply_undo_effect,
    physical_undo_effect,
)
from repro.core.client_log import ClientLogManager
from repro.core.log_records import (
    BeginCheckpointRecord,
    CommitRecord,
    CompensationRecord,
    EndRecord,
    LogRecord,
    PrepareRecord,
    TxnOutcome,
    UpdateOp,
    UpdateRecord,
)
from repro.core.lsn import LSN, LogAddr, NULL_LSN
from repro.core.server import Server
from repro.core.transaction import Transaction, TransactionTable, TxnState
from repro.errors import (
    NodeUnavailableError,
    RecoveryInvariantError,
    TransactionStateError,
)
from repro.locking.llm import LocalLockManager
from repro.locking.lock_modes import LockMode
from repro.net.messages import MsgType
from repro.net.network import Network
from repro.net.rpc import BatchCall, RpcDispatcher
from repro.records.heap import RecordId, decode_value, encode_value
from repro.storage.buffer_pool import BufferControlBlock, BufferPool
from repro.storage.page import Page, PageKind

if TYPE_CHECKING:
    from repro.faults import FaultPlan
    from repro.obs.tracer import Tracer
    from repro.sanitizer import Sanitizer

#: Hook for logical undo of index operations: (record, page_supplier) ->
#: UndoEffect on the page where the key currently lives.
ClientLogicalUndo = Callable[[UpdateRecord, Callable[[int], Page]], UndoEffect]


class Client:
    """One client workstation of the complex."""

    def __init__(self, client_id: str, config: SystemConfig,
                 network: Network, server: Server) -> None:
        self.client_id = client_id
        self.config = config
        self.network = network
        #: Kept only for session establishment (``connect_client``); all
        #: protocol interactions go through ``self.rpc``.
        self.server = server
        self.layout = server.layout
        network.register(client_id)
        #: Caller-side endpoint for every client->server exchange.
        self.rpc = network.stub(client_id, server.node_id)
        self.dispatcher = RpcDispatcher(client_id)
        self._register_handlers()
        network.attach(client_id, self.dispatcher)

        self.pool = BufferPool(
            config.client_buffer_frames, f"{client_id}-pool",
            on_evict=self._evict_dirty,
        )
        self.log = ClientLogManager(client_id)
        self.llm = LocalLockManager(
            client_id,
            glm_request=self._glm_request,
            glm_release=self._glm_release,
            cache_locks=config.llm_cache_locks,
        )
        self.txns = TransactionTable(client_id)
        #: P-locks this client holds: page id -> mode.  X is the
        #: update privilege; S is the cache-coherency token that keeps a
        #: cached copy trustworthy.
        self._p_locks: Dict[int, LockMode] = {}
        #: Latest Commit_LSN distributed by the server (section 3).
        self.commit_lsn: LSN = NULL_LSN
        #: Per-table Commit_LSN map and its floors-only default (only
        #: populated when the per-table refinement is enabled).
        self._table_commit_lsn: Dict[str, LSN] = {}
        self._floor_bound: LSN = NULL_LSN
        #: Maps a page to its table for intent locks; set by the system.
        self.table_of: Callable[[int], Optional[str]] = lambda page_id: None
        from repro.index.undo import logical_undo_effect
        self.logical_undo: Optional[ClientLogicalUndo] = logical_undo_effect
        self.crashed = False
        self._commits_since_ckpt = 0

        # Metrics
        self.lock_calls = 0
        self.locks_avoided_by_commit_lsn = 0
        self.commits = 0
        self.aborts = 0
        self.pages_shipped_at_commit = 0
        self.rollback_records_fetched_remotely = 0
        #: CLRs this client wrote during normal (client-side) rollbacks.
        self.clrs_written_locally = 0
        #: Space-map page updates applied by this client (allocate /
        #: deallocate), surfaced through the metrics registry.
        self.smp_updates = 0

        #: Attached by the owning complex; ``None`` disables the hooks.
        self.tracer: Optional["Tracer"] = None
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional["FaultPlan"] = None
        #: Attached by the owning complex; ``None`` disables the runtime
        #: latch/lock-order sanitizer (repro.sanitizer).
        self.sanitizer: Optional["Sanitizer"] = None

        server.connect_client(self)

    # ------------------------------------------------------------------
    # RPC dispatch table (what the server may invoke on this client)
    # ------------------------------------------------------------------

    def _register_handlers(self) -> None:
        """Register the callbacks the server (and peers) may dispatch.

        Handlers receive the sender's node id first; these wrappers drop
        it because the callbacks are sender-agnostic.
        """
        d = self.dispatcher
        d.register("push_page",
                   lambda sender, page_id: self.push_page_callback(page_id))
        d.register("release_privilege",
                   lambda sender, page_id: self.release_privilege_callback(page_id))
        d.register("downgrade_privilege",
                   lambda sender, page_id: self.downgrade_privilege_callback(page_id))
        d.register("forward_page",
                   lambda sender, page_id, requester_id:
                   self.forward_page_callback(page_id, requester_id))
        d.register("invalidate_page",
                   lambda sender, page_id: self.invalidate_page(page_id))
        d.register("relinquish_lock",
                   lambda sender, resource: self.relinquish_lock_callback(resource))
        d.register("reduce_lock",
                   lambda sender, resource: self.reduce_lock_callback(resource))
        d.register("receive_forwarded_page",
                   lambda sender, page: self.receive_forwarded_page(page))
        d.register("report_dirty_pages",
                   lambda sender: self.report_dirty_pages())
        d.register("lsn_sync",
                   lambda sender, *args: self.receive_lsn_sync(*args))
        d.register("prepare_branch", self._prepare_branch)
        d.register("commit_branch", self._commit_branch)
        d.register("abort_branch", self._abort_branch)

    # -- 2PC participant handlers (coordinator -> client) ---------------

    def _prepare_branch(self, sender: str, txn_id: str) -> None:
        txn = self.txns.maybe_get(txn_id)
        if txn is None:
            raise TransactionStateError(
                f"no branch transaction {txn_id} at {self.client_id}"
            )
        self.prepare(txn)

    def _commit_branch(self, sender: str, txn_id: str) -> None:
        txn = self.txns.maybe_get(txn_id)
        if txn is None:
            return  # already terminated (e.g. resolved at reconnect)
        self.commit_prepared(txn)

    def _abort_branch(self, sender: str, txn_id: str) -> None:
        txn = self.txns.maybe_get(txn_id)
        if txn is None:
            return  # never started here, or client recovery rolled it back
        if txn.state is TxnState.PREPARED:
            txn.state = TxnState.ACTIVE  # leave in-doubt to abort
        if txn.state is TxnState.ACTIVE:
            self.rollback(txn)

    # ------------------------------------------------------------------
    # GLM plumbing (through the counted network)
    # ------------------------------------------------------------------

    def _glm_request(self, resource: Any, mode: LockMode) -> LockMode:
        return self.rpc.call("acquire_lock", MsgType.LOCK_REQUEST,
                             payload=str(resource), args=(resource, mode))

    def _glm_release(self, resource: Any) -> None:
        self.rpc.call("release_lock", MsgType.LOCK_RELEASE,
                      payload=str(resource), args=(resource,))

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    def _get_page(self, page_id: int) -> Page:
        """The client's working copy for reading.

        A cached copy may be used directly only under a P-lock (S token
        or the X privilege) — otherwise another client may have updated
        the page since it was cached, and the server must be asked for
        the current version (which also grants the S token).
        """
        cached = self.pool.get(page_id)  # counts the cache hit or miss
        if cached is not None and page_id in self._p_locks:
            return cached
        cached_lsn = cached.page_lsn if cached is not None else None
        page = self.rpc.call("get_page", MsgType.PAGE_REQUEST,
                             payload=page_id, args=(page_id, cached_lsn))
        self._p_locks.setdefault(page_id, LockMode.S)
        if page is None:
            assert cached is not None  # server confirmed our copy current
            return cached
        return self.pool.admit(page).page

    def _ensure_update_privilege(self, page_id: int) -> Page:
        """Hold the page's update privilege and a current copy of it."""
        if self._p_locks.get(page_id) is LockMode.X:
            cached = self.pool.get(page_id)
            if cached is not None:
                return cached
        cached_lsn = None
        cached = self.pool.peek(page_id)
        if cached is not None:
            cached_lsn = cached.page_lsn
        latest = self.rpc.call("acquire_update_privilege",
                               MsgType.P_LOCK_REQUEST,
                               payload=page_id, args=(page_id, cached_lsn))
        self._p_locks[page_id] = LockMode.X
        if latest is not None:
            return self.pool.admit(latest).page
        page = self.pool.get(page_id)
        if page is None:
            # Privilege held but no copy cached (evicted earlier).
            shipped = self.rpc.call("get_page", MsgType.PAGE_REQUEST,
                                    payload=page_id, args=(page_id,))
            assert shipped is not None
            page = self.pool.admit(shipped).page
        return page

    # ------------------------------------------------------------------
    # Log shipping and WAL towards the server
    # ------------------------------------------------------------------

    def _ship_log_records(self) -> None:
        """Send every unshipped buffered record to the server (FIFO)."""
        batch = self.log.unshipped()
        if not batch:
            return
        assigned, flushed = self.rpc.call("receive_log_records",
                                          MsgType.LOG_SHIP,
                                          payload=batch, args=(batch,))
        self.log.note_shipped(assigned)
        self.log.prune_stable(flushed)

    def _ship_page(self, page_id: int) -> None:
        """Make the server's copy current: log records first (WAL with
        respect to the server), then the page image — or, in the
        log-replay transport, only a small materialize request."""
        bcb = self.pool.bcb(page_id)
        if bcb is None or not bcb.dirty:
            return
        self._push_dirty_state(bcb)
        self.pool.mark_clean(page_id)

    def _evict_dirty(self, bcb: BufferControlBlock) -> None:
        """Steal at the client: an evicted dirty page goes to the server."""
        self._push_dirty_state(bcb)

    def _push_dirty_state(self, bcb: BufferControlBlock) -> None:
        if self.faults is not None:
            self.faults.crashpoint("client.evict.before_push", self.tracer)
        self._ship_log_records()
        if self.config.page_transport is PageTransport.LOG_REPLAY:
            self.rpc.call("materialize_page", MsgType.MATERIALIZE,
                          payload=bcb.page_id,
                          args=(bcb.page_id, bcb.rec_lsn, bcb.page.page_lsn))
        else:
            self.rpc.call("receive_dirty_page", MsgType.PAGE_SHIP,
                          payload=bcb.page,
                          args=(bcb.page.snapshot(), bcb.rec_lsn))

    # ------------------------------------------------------------------
    # LSN assignment (section 2.2 / experiment E10)
    # ------------------------------------------------------------------

    def _assign_lsn(self, page_lsn: LSN) -> LSN:
        if self.config.lsn_assignment is LsnAssignment.LOCAL:
            return self.log.next_lsn(page_lsn)
        lsn = self.rpc.call("assign_lsn_rpc", MsgType.LSN_REQUEST,
                            payload=page_lsn, args=(page_lsn,))
        self.log.clock.observe_lsn(lsn)
        return lsn

    # ------------------------------------------------------------------
    # Locking helpers
    # ------------------------------------------------------------------

    def _lock_for_read(self, txn: Transaction, rid: RecordId,
                       page: Page) -> None:
        """Acquire read locks, or skip them via Commit_LSN (section 3).

        With the per-table refinement, the threshold for a page is its
        table's Commit_LSN (or the floors-only bound for unconstrained
        tables) — typically much fresher than the global value while a
        long transaction runs elsewhere.
        """
        if self.config.commit_lsn_enabled:
            threshold = self.commit_lsn
            if self.config.commit_lsn_per_table:
                table = self.table_of(rid.page_id)
                if table is not None and self._floor_bound != NULL_LSN:
                    threshold = self._table_commit_lsn.get(
                        table, self._floor_bound
                    )
            if page.page_lsn < threshold:
                self.locks_avoided_by_commit_lsn += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "lock", "commit_lsn_avoided", self.client_id,
                        page_id=rid.page_id, page_lsn=int(page.page_lsn),
                        threshold=int(threshold),
                    )
                return
        self._acquire_logical(txn, rid, LockMode.S)

    def _lock_for_update(self, txn: Transaction, rid: RecordId) -> None:
        self._acquire_logical(txn, rid, LockMode.X)

    def _acquire_logical(self, txn: Transaction, rid: RecordId,
                         mode: LockMode) -> None:
        granularity = self.config.lock_granularity
        table = self.table_of(rid.page_id)
        self.lock_calls += 1
        if granularity is LockGranularity.TABLE:
            if table is None:
                table = f"page-{rid.page_id}"
            self.llm.acquire(txn.txn_id, ("tab", table), mode)
            return
        if table is not None:
            intent = LockMode.IX if mode is LockMode.X else LockMode.IS
            self.llm.acquire(txn.txn_id, ("tab", table), intent)
        if granularity is LockGranularity.PAGE:
            self.llm.acquire(txn.txn_id, ("page", rid.page_id), mode)
        else:
            self.llm.acquire(txn.txn_id, ("rec", rid.page_id, rid.slot), mode)

    # ------------------------------------------------------------------
    # Transaction API
    # ------------------------------------------------------------------

    def begin(self, txn_id: Optional[str] = None) -> Transaction:
        self._require_up()
        return self.txns.begin(txn_id)

    def read(self, txn: Transaction, rid: RecordId) -> Any:
        """Read one record under cursor-stability semantics."""
        self._require_up()
        txn.require_active()
        page = self._get_page(rid.page_id)
        self._lock_for_read(txn, rid, page)
        return decode_value(page.read_record(rid.slot))

    def update(self, txn: Transaction, rid: RecordId, value: Any) -> None:
        """Replace the record at ``rid`` (the full section 2.2 protocol)."""
        self._write_record(txn, rid, UpdateOp.RECORD_MODIFY, encode_value(value))

    def insert(self, txn: Transaction, page_id: int, value: Any) -> RecordId:
        """Insert a record into ``page_id``; returns its new RecordId."""
        self._require_up()
        txn.require_active()
        page = self._ensure_update_privilege(page_id)
        rid = RecordId(page_id, page.next_free_slot())
        self._write_record(txn, rid, UpdateOp.RECORD_INSERT,
                           encode_value(value), page=page)
        return rid

    def delete(self, txn: Transaction, rid: RecordId) -> None:
        """Delete the record at ``rid``."""
        self._write_record(txn, rid, UpdateOp.RECORD_DELETE, None)

    def _write_record(self, txn: Transaction, rid: RecordId, op: UpdateOp,
                      after: Optional[bytes],
                      page: Optional[Page] = None) -> None:
        self._require_up()
        txn.require_active()
        self._lock_for_update(txn, rid)
        if page is None:
            page = self._ensure_update_privilege(rid.page_id)
        # Pin across the read-log-mutate window: an eviction in between
        # would detach ``page`` from its frame and lose the mutation.
        with self.pool.fixed(rid.page_id):
            if op is UpdateOp.RECORD_INSERT:
                before = None
            else:
                before = page.read_record(rid.slot)
            dirtying = not self._is_dirty(rid.page_id)
            # RecLSN bound (section 2.5.2): the most recent local record
            # just before the page becomes dirty at this client.
            rec_lsn = self.log.clock.local_max_lsn if dirtying else NULL_LSN
            lsn = self._assign_lsn(page.page_lsn)
            record = UpdateRecord(
                lsn=lsn, client_id=self.client_id, txn_id=txn.txn_id,
                prev_lsn=txn.last_lsn, page_id=rid.page_id, op=op,
                slot=rid.slot, before=before, after=after,
            )
            self.log.append(record)
            txn.note_logged(lsn, rid.page_id)
            if op is UpdateOp.RECORD_INSERT:
                assert after is not None
                page.insert_record(after, slot=rid.slot)
            elif op is UpdateOp.RECORD_MODIFY:
                assert after is not None
                page.modify_record(rid.slot, after)
            else:
                page.delete_record(rid.slot)
            page.page_lsn = lsn
            self.pool.mark_dirty(rid.page_id, rec_lsn=rec_lsn)

    def _is_dirty(self, page_id: int) -> bool:
        bcb = self.pool.bcb(page_id)
        return bcb is not None and bcb.dirty

    def savepoint(self, txn: Transaction, name: str) -> None:
        """Establish a savepoint for partial rollback (section 2.4)."""
        self._require_up()
        txn.set_savepoint(name)

    # ------------------------------------------------------------------
    # Generic logged updates (used by allocation and the B+-tree)
    # ------------------------------------------------------------------

    def apply_logged_update(self, txn: Transaction, page: Page, op: UpdateOp,
                            slot: int = -1, before: Optional[bytes] = None,
                            after: Optional[bytes] = None,
                            key: Optional[bytes] = None,
                            redo_only: bool = False,
                            page_kind: Optional[str] = None,
                            lsn_floor: LSN = NULL_LSN) -> LSN:
        """Log one update and apply it to an already-privileged page.

        ``lsn_floor`` injects an extra lower bound into the LSN
        assignment — the section 2.3 mechanism: a page-format record
        passes the covering SMP's LSN, and an SMP-deallocate record
        passes the dead page's LSN, keeping page_LSN monotonic across
        cross-system reallocation.
        """
        self._require_up()
        txn.require_active()
        with self.pool.fixed(page.page_id):
            dirtying = not self._is_dirty(page.page_id)
            rec_lsn = self.log.clock.local_max_lsn if dirtying else NULL_LSN
            lsn = self._assign_lsn(max(page.page_lsn, lsn_floor))
            record = UpdateRecord(
                lsn=lsn, client_id=self.client_id, txn_id=txn.txn_id,
                prev_lsn=txn.last_lsn, page_id=page.page_id, op=op, slot=slot,
                before=before, after=after, redo_only=redo_only, key=key,
                page_kind=page_kind,
            )
            self.log.append(record)
            txn.note_logged(lsn, page.page_id, redo_only=redo_only)
            from repro.core.apply import _apply_op
            _apply_op(page, op, slot, after, key, page_kind)
            page.page_lsn = lsn
            self.pool.mark_dirty(page.page_id, rec_lsn=rec_lsn)
        return lsn

    def begin_nested_top_action(self, txn: Transaction) -> LSN:
        """Start a nested top action; returns the point to chain past."""
        return txn.undo_next_lsn

    def end_nested_top_action(self, txn: Transaction, saved_undo_next: LSN) -> None:
        """Close a nested top action with a dummy CLR.

        The dummy CLR's UndoNxtLSN points at the record preceding the
        action, so a later rollback of the transaction steps over the
        whole structural change (e.g. a page split) without undoing it.
        """
        self._require_up()
        lsn = self._assign_lsn(NULL_LSN)
        dummy = CompensationRecord(
            lsn=lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn, undo_next_lsn=saved_undo_next,
            page_id=-1, op=None,
        )
        self.log.append(dummy)
        txn.note_clr(lsn, saved_undo_next)

    # ------------------------------------------------------------------
    # Page allocation through space map pages (section 2.3)
    # ------------------------------------------------------------------

    def allocate_page(self, txn: Transaction, kind: PageKind,
                      initial_meta: Optional[List[Tuple[str, Any]]] = None) -> Page:
        """Allocate and format a page without reading its dead version.

        Finds a free slot in some SMP, logs the allocation, then logs a
        redo-only format record whose LSN is derived from the SMP's LSN —
        guaranteeing it exceeds whatever LSN the page carried when some
        *other* system deallocated it (section 2.3's correctness
        argument).  Returns the freshly formatted (cached, dirty) page.
        """
        from repro.storage import space_map as sm
        self._require_up()
        txn.require_active()
        # Catalog lookup: rides an already-counted exchange in a real
        # deployment, so the envelope is uncharged.
        max_page_id = self.rpc.call("max_known_page_id", MsgType.PAGE_REQUEST,
                                    charge=False)
        for smp_id in self.layout.smp_ids(max_page_id):
            smp = self._ensure_update_privilege(smp_id)
            bit = sm.find_free_bit(smp)
            if bit is None:
                continue
            page_id = self.layout.page_for(smp_id, bit)
            # Pin the SMP: privileging the data page below may otherwise
            # evict its frame, and the format record's lsn_floor reads
            # smp.page_lsn after that admission.
            with self.pool.fixed(smp_id):
                self.apply_logged_update(
                    txn, smp, UpdateOp.SMP_ALLOCATE, slot=bit,
                    before=bytes([sm.FREE]), after=bytes([sm.ALLOCATED]),
                )
                self.smp_updates += 1
                # The allocation is logged but the format record is not
                # yet: a crash here leaves an allocated-but-unformatted
                # page for undo to reclaim (section 2.3).
                if self.faults is not None:
                    self.faults.crashpoint(
                        "client.alloc.between_smp_and_format", self.tracer)
                # lint: allow[LOCK002] SMP-first order: the data-page P-lock RPC under the SMP pin
                page = self._ensure_update_privilege(page_id)
                meta_image = None
                if initial_meta:
                    from repro.core import codec
                    meta_image = codec.encode(tuple(initial_meta))
                self.apply_logged_update(
                    txn, page, UpdateOp.PAGE_FORMAT, after=meta_image,
                    redo_only=True, page_kind=kind.value,
                    lsn_floor=smp.page_lsn,
                )
            return page
        raise TransactionStateError("no free pages left in any space map")

    def deallocate_page(self, txn: Transaction, page_id: int) -> None:
        """Return an (empty) page to the free pool.

        The SMP update's LSN is forced above the dead page's final LSN
        (section 2.3), so any future reallocation — by any system —
        formats the page with a still-higher LSN.

        Privilege and pin order is SMP-first, the same global order
        :meth:`allocate_page` uses — acquiring the pair in the opposite
        order here is the latch-deadlock seed LOCK001 and the runtime
        sanitizer exist to catch.  The dead page needs no pin at all:
        its ``page_lsn`` is read off the privileged Page object
        immediately, before anything else could evict or re-admit it.
        """
        from repro.storage import space_map as sm
        self._require_up()
        txn.require_active()
        smp_id = self.layout.smp_for(page_id)
        bit = self.layout.bit_for(page_id)
        smp = self._ensure_update_privilege(smp_id)
        # Pin the SMP: privileging the dead page below may otherwise
        # evict the SMP frame before the update is applied.
        with self.pool.fixed(smp_id):
            # lint: allow[LOCK002] SMP-first order: the dead-page P-lock RPC under the SMP pin
            page = self._ensure_update_privilege(page_id)
            self.apply_logged_update(
                txn, smp, UpdateOp.SMP_DEALLOCATE, slot=bit,
                before=bytes([sm.ALLOCATED]), after=bytes([sm.FREE]),
                lsn_floor=page.page_lsn,
            )
            self.smp_updates += 1

    # ------------------------------------------------------------------
    # Commit / prepare
    # ------------------------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        """Commit: log records forced at the server; pages per policy.

        ARIES/CSA ships *nothing but log records*; the baselines force
        modified pages to the server (ESM-CS, with a CDPL logged first)
        or all the way to disk (ObjectStore-style), and ESM-CS purges the
        client cache afterwards.
        """
        self._require_up()
        txn.require_active()
        if self.config.commit_page_policy is not CommitPagePolicy.NO_FORCE:
            if self.config.log_cdpl_at_commit:
                entries = []
                for page_id in sorted(txn.pages_modified):
                    bcb = self.pool.bcb(page_id)
                    if bcb is not None and bcb.dirty:
                        entries.append((page_id, bcb.rec_lsn))
                if entries:
                    self._ship_log_records()
                    # The CDPL rides the commit's log traffic (uncharged).
                    self.rpc.call("log_cdpl", MsgType.COMMIT_REQUEST,
                                  args=(txn.txn_id, entries), charge=False)
            for page_id in sorted(txn.pages_modified):
                if self._is_dirty(page_id):
                    self._ship_page(page_id)
                    self.pages_shipped_at_commit += 1
                if self.config.commit_page_policy is CommitPagePolicy.FORCE_TO_DISK:
                    # Piggybacks on the page ship just sent (uncharged).
                    self.rpc.call("flush_page", MsgType.COMMIT_REQUEST,
                                  args=(page_id,), charge=False)
        if self.faults is not None:
            self.faults.crashpoint("client.commit.before_commit_record",
                                   self.tracer)
        commit_lsn = self._assign_lsn(NULL_LSN)
        self.log.append(CommitRecord(
            lsn=commit_lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn,
        ))
        txn.last_lsn = commit_lsn
        batch = self.log.unshipped()
        if self.config.rpc_batching and self.faults is None and batch:
            # Coalesce the commit's ship + force pair into one batched
            # exchange on the client->server edge.  Disabled whenever a
            # fault plan is attached: the before_force crashpoint sits
            # between the two calls, and batching would skip it.
            shipped, forced = self.rpc.call_batch((
                BatchCall("receive_log_records", MsgType.LOG_SHIP,
                          payload=batch, args=(batch,)),
                BatchCall("force_log_for_commit", MsgType.COMMIT_REQUEST,
                          payload=txn.txn_id, args=(txn.txn_id,)),
            ))
            assigned, ship_flushed = shipped
            self.log.note_shipped(assigned)
            self.log.prune_stable(ship_flushed)
            flushed = forced
        else:
            self._ship_log_records()
            if self.faults is not None:
                self.faults.crashpoint("client.commit.before_force",
                                       self.tracer)
            flushed = self.rpc.call("force_log_for_commit",
                                    MsgType.COMMIT_REQUEST,
                                    payload=txn.txn_id, args=(txn.txn_id,))
        self.log.prune_stable(flushed)
        if self.faults is not None:
            self.faults.crashpoint("client.commit.before_end", self.tracer)
        txn.state = TxnState.COMMITTED
        end_lsn = self._assign_lsn(NULL_LSN)
        self.log.append(EndRecord(
            lsn=end_lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn, outcome=TxnOutcome.COMMITTED,
        ))
        self._finish_transaction(txn)
        self.commits += 1
        self._after_termination()
        self._maybe_auto_checkpoint()

    def prepare(self, txn: Transaction) -> None:
        """Two-phase commit: enter the in-doubt state (forced)."""
        self._require_up()
        txn.require_active()
        lock_list = []
        for resource in sorted(self.llm.local.resources_held_by(txn.txn_id),
                               key=str):
            mode = self.llm.local.held_mode(txn.txn_id, resource)
            if mode is None:
                continue
            resource_tuple = (
                tuple(resource) if isinstance(resource, tuple) else (resource,)
            )
            lock_list.append((resource_tuple, mode.value))
        locks = tuple(lock_list)
        lsn = self._assign_lsn(NULL_LSN)
        self.log.append(PrepareRecord(
            lsn=lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn, locks=locks,
        ))
        txn.last_lsn = lsn
        self._ship_log_records()
        if self.faults is not None:
            self.faults.crashpoint("client.prepare.before_force", self.tracer)
        flushed = self.rpc.call("force_log_for_commit", MsgType.COMMIT_REQUEST,
                                payload=txn.txn_id, args=(txn.txn_id,))
        self.log.prune_stable(flushed)
        txn.state = TxnState.PREPARED

    def commit_prepared(self, txn: Transaction) -> None:
        """Second phase: commit an in-doubt transaction."""
        self._require_up()
        if txn.state is not TxnState.PREPARED:
            raise TransactionStateError(
                f"transaction {txn.txn_id} is not prepared"
            )
        txn.state = TxnState.ACTIVE  # momentarily, for the commit path
        self.commit(txn)

    # ------------------------------------------------------------------
    # Rollback (section 2.4)
    # ------------------------------------------------------------------

    def rollback(self, txn: Transaction, savepoint: Optional[str] = None) -> None:
        """Total or partial rollback.

        ARIES/CSA performs it at the client: open a backward scan from
        the transaction's latest record, fetching from the server any
        record already pruned from the local buffer, re-obtaining pages
        (and update privileges) stolen since the update.  The ESM-CS
        baseline delegates the whole rollback to the server instead.
        """
        self._require_up()
        txn.require_active()
        stop_lsn = NULL_LSN
        sp = None
        if savepoint is not None:
            sp = txn.find_savepoint(savepoint)
            stop_lsn = sp.lsn
        if self.config.rollback_site is RollbackSite.SERVER:
            self._rollback_at_server(txn, stop_lsn)
        else:
            self._rollback_at_client(txn, stop_lsn)
        if sp is not None:
            txn.discard_savepoints_after(sp)
            return
        # Total rollback terminates the transaction.
        end_lsn = self._assign_lsn(NULL_LSN)
        self.log.append(EndRecord(
            lsn=end_lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn, outcome=TxnOutcome.ABORTED,
        ))
        self._ship_log_records()
        txn.state = TxnState.ABORTED
        self._finish_transaction(txn)
        self.aborts += 1
        self._after_termination()

    def _rollback_at_client(self, txn: Transaction, stop_lsn: LSN) -> None:
        current = txn.undo_next_lsn
        while current != NULL_LSN and current > stop_lsn:
            record = self._fetch_txn_record(txn, current)
            if isinstance(record, CompensationRecord):
                current = record.undo_next_lsn
                continue
            assert isinstance(record, UpdateRecord)
            if record.redo_only:
                current = record.prev_lsn
                continue
            self._undo_locally(txn, record)
            current = record.prev_lsn
        txn.undo_next_lsn = current

    def _fetch_txn_record(self, txn: Transaction, lsn: LSN) -> LogRecord:
        record = self.log.find_local(txn.txn_id, lsn)
        if record is not None:
            return record
        fetched = self.rpc.call("fetch_log_records", MsgType.LOG_FETCH,
                                payload=lsn, args=(txn.txn_id, [lsn]))
        self.rollback_records_fetched_remotely += 1
        return fetched[0]

    def _undo_locally(self, txn: Transaction, record: UpdateRecord) -> None:
        if record.undo_is_logical() and self.logical_undo is not None:
            effect = self.logical_undo(record, self._ensure_update_privilege)
        else:
            effect = physical_undo_effect(record)
        page = self._ensure_update_privilege(effect.page_id)
        dirtying = not self._is_dirty(effect.page_id)
        rec_lsn = self.log.clock.local_max_lsn if dirtying else NULL_LSN
        clr_lsn = self._assign_lsn(page.page_lsn)
        apply_undo_effect(page, effect, clr_lsn)
        clr = CompensationRecord(
            lsn=clr_lsn, client_id=self.client_id, txn_id=txn.txn_id,
            prev_lsn=txn.last_lsn, undo_next_lsn=record.prev_lsn,
            page_id=effect.page_id, op=effect.op, slot=effect.slot,
            after=effect.after, key=effect.key,
        )
        if self.faults is not None:
            self.faults.crashpoint("client.rollback.before_clr", self.tracer)
        self.log.append(clr)
        txn.note_clr(clr_lsn, record.prev_lsn)
        self.clrs_written_locally += 1
        self.pool.mark_dirty(effect.page_id, rec_lsn=rec_lsn)

    def _rollback_at_server(self, txn: Transaction, stop_lsn: LSN) -> None:
        """ESM-CS style: the server undoes on its own page versions."""
        self._ship_log_records()
        last_lsn, undo_next = self.rpc.call(
            "rollback_transaction_serverside", MsgType.COMMIT_REQUEST,
            payload=(txn.txn_id, stop_lsn),
            args=(txn.txn_id, stop_lsn, txn.last_lsn, txn.undo_next_lsn),
        )
        txn.last_lsn = last_lsn
        txn.undo_next_lsn = undo_next
        # The client's versions of the touched pages are now stale.
        for page_id in sorted(txn.pages_modified):
            self.pool.drop(page_id)

    def _finish_transaction(self, txn: Transaction) -> None:
        self.llm.release_transaction(txn.txn_id)
        self.txns.remove(txn.txn_id)
        if self.sanitizer is not None:
            # Transaction termination ends the acquisition span: no pin
            # may outlive the transaction that took it.
            self.sanitizer.on_span_exit(self.client_id)

    def _after_termination(self) -> None:
        """Commit-time cache policy: ESM-CS purges everything."""
        if self.config.commit_cache_policy is CommitCachePolicy.PURGE:
            for page_id in list(self.pool.page_ids()):
                bcb = self.pool.bcb(page_id)
                if bcb is not None and bcb.dirty:
                    self._ship_page(page_id)
                self.pool.drop(page_id)
            for page_id in sorted(self._p_locks):
                self.rpc.call("release_update_privilege",
                              MsgType.P_LOCK_RELEASE,
                              payload=page_id, args=(page_id,))
            self._p_locks.clear()

    # ------------------------------------------------------------------
    # Checkpoints (section 2.6.1)
    # ------------------------------------------------------------------

    def _maybe_auto_checkpoint(self) -> None:
        interval = self.config.client_checkpoint_interval
        if interval <= 0:
            return
        self._commits_since_ckpt += 1
        if self._commits_since_ckpt >= interval:
            self.take_checkpoint()
            self._commits_since_ckpt = 0

    def take_checkpoint(self) -> None:
        """Record the client's DPL (with RecLSNs) and transaction states.

        The records travel to the server, which rewrites RecLSNs to
        RecAddrs before appending and remembers where this checkpoint
        lives for failed-client recovery.
        """
        self._require_up()
        self._ship_log_records()
        begin = BeginCheckpointRecord(
            lsn=self._assign_lsn(NULL_LSN), client_id=self.client_id,
            txn_id=None, prev_lsn=NULL_LSN, owner=self.client_id,
        )
        from repro.core.log_records import DirtyPageEntry, EndCheckpointRecord
        entries = tuple(
            DirtyPageEntry(page_id=bcb.page_id, rec_lsn=bcb.rec_lsn)
            for bcb in self.pool.dirty_bcbs()
        )
        end = EndCheckpointRecord(
            lsn=self._assign_lsn(NULL_LSN), client_id=self.client_id,
            txn_id=None, prev_lsn=begin.lsn, owner=self.client_id,
            dirty_pages=entries, transactions=self.txns.to_table_entries(),
        )
        if self.faults is not None:
            self.faults.crashpoint("client.checkpoint.before_send",
                                   self.tracer)
        _, flushed = self.rpc.call("receive_client_checkpoint",
                                   MsgType.CHECKPOINT,
                                   payload=[begin, end], args=(begin, end))
        self.log.prune_stable(flushed)

    def report_dirty_pages(self) -> List[Tuple[int, LSN]]:
        """DPL for the server's coordinated checkpoint (section 2.7)."""
        return [(bcb.page_id, bcb.rec_lsn) for bcb in self.pool.dirty_bcbs()]

    def report_lock_state(self) -> Tuple[Dict[Any, LockMode], Dict[int, LockMode], List[int]]:
        """Lock-table reconstruction data after a server restart."""
        logical = self.llm.global_locks_snapshot()
        p_locks = dict(sorted(self._p_locks.items()))
        cached = list(self.pool.page_ids())
        return logical, p_locks, cached

    # ------------------------------------------------------------------
    # Server-issued callbacks
    # ------------------------------------------------------------------

    def push_page_callback(self, page_id: int) -> None:
        """Ship the current version (keeping the privilege) so the server
        can serve an up-to-date copy to a reader."""
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        self._ship_page(page_id)

    def release_privilege_callback(self, page_id: int) -> None:
        """Give up the P-lock entirely (another writer needs the page):
        latest version must reach the server first (section 2.1); the
        local copy is dropped."""
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        self._ship_page(page_id)
        self.pool.drop(page_id)
        self._p_locks.pop(page_id, None)

    def forward_page_callback(self, page_id: int,
                              requester_id: str) -> Optional[Tuple[LSN, LSN]]:
        """Forward the page directly to another client (section 4.1).

        The log records must be received and acknowledged by the server
        before the page may travel to the requesting client; the dirty
        image then skips the server entirely.  Returns (RecLSN bound,
        forwarded version's page_LSN) for the server's forwarded-dirty
        table, or None when the local copy was clean (nothing to
        forward; the server's version is current).
        """
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        bcb = self.pool.bcb(page_id)
        if bcb is None or not bcb.dirty:
            self.pool.drop(page_id)
            self._p_locks.pop(page_id, None)
            return None
        self._ship_log_records()
        rec_lsn = bcb.rec_lsn
        version_lsn = bcb.page.page_lsn
        snapshot = bcb.page.snapshot()
        self.network.stub(self.client_id, requester_id).call(
            "receive_forwarded_page", MsgType.PAGE_SHIP,
            payload=snapshot, args=(snapshot,),
        )
        self.pool.drop(page_id)
        self._p_locks.pop(page_id, None)
        return rec_lsn, version_lsn

    def receive_forwarded_page(self, page: Page) -> None:
        """Admit a page forwarded from another client.

        The page arrives dirty-with-respect-to-the-server; the RecLSN
        slot stays NULL because the sender's recovery bound lives in the
        *sender's* LSN space — the server's forwarded-dirty table answers
        for it until the image finally reaches the server.
        """
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        self.pool.admit(page, dirty=True, rec_lsn=NULL_LSN)

    def downgrade_privilege_callback(self, page_id: int) -> None:
        """A reader appeared: push the current version and keep only an
        S token — the cached copy remains valid until some writer
        invalidates it."""
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        self._ship_page(page_id)
        if page_id in self._p_locks:
            self._p_locks[page_id] = LockMode.S

    def invalidate_page(self, page_id: int) -> None:
        """Another client took the update privilege; the cached copy is
        stale.  Only clean copies are ever invalidated."""
        bcb = self.pool.bcb(page_id)
        if bcb is not None and bcb.dirty:
            raise RecoveryInvariantError(
                f"invalidation of dirty page {page_id} at {self.client_id}"
            )
        self.pool.drop(page_id)
        self._p_locks.pop(page_id, None)

    def relinquish_lock_callback(self, resource: Any) -> bool:
        return self.llm.try_relinquish(resource)

    def reduce_lock_callback(self, resource: Any) -> Optional[LockMode]:
        """De-escalation (section 2.1's LLM optimization, conflict side):
        shrink the cached global lock to the local transactions' need."""
        return self.llm.reduce_to_local_need(resource)

    def receive_lsn_sync(self, max_lsn: LSN, commit_lsn: LSN,
                         table_values: Optional[Dict[str, LSN]] = None,
                         floor_bound: Optional[LSN] = None) -> None:
        """Max_LSN / Commit_LSN piggyback (section 3, Lamport rule).

        With per-table Commit_LSN enabled the server also distributes a
        per-table map plus the floors-only bound used for tables no
        in-progress transaction constrains.
        """
        self.log.clock.observe_max_lsn(max_lsn)
        self.commit_lsn = commit_lsn
        if table_values is not None:
            self._table_commit_lsn = dict(table_values)
            self._floor_bound = floor_bound if floor_bound is not None \
                else commit_lsn

    def converge_after_server_restart(self) -> None:
        """Drop caches and P-locks after a server restart.

        Every update this client ever made is in the server's log (the
        restart's phase 0 shipped the whole buffer) and has been
        materialized into the server's recovered pages, so the cached
        copies carry no unique data — and restart undo of *failed*
        clients' transactions may have written CLRs this cache has never
        seen.  Converging on the server's lineage is both safe and
        necessary; pages refetch on demand.
        """
        self.pool.clear()
        self._p_locks.clear()

    def server_restarted(self, flushed_addr: LogAddr) -> None:
        """The server came back.

        Lost-tail records were already replayed (in merged original
        order) by the server's restart phase 0; here the client only
        pushes records it had never shipped at all.
        """
        self._ship_log_records()

    # ------------------------------------------------------------------
    # Page recovery (section 2.5.2): process failure corrupts a cached page
    # ------------------------------------------------------------------

    def recover_corrupted_page(self, page_id: int) -> Page:
        """Recover a corrupted cached page from the server's copy.

        The client first ships its buffered log records (they survived
        the process failure; only the page image is damaged), then asks
        the server to roll its uncorrupted copy forward and ship the
        result.
        """
        self._require_up()
        bcb = self.pool.bcb(page_id)
        rec_lsn = bcb.rec_lsn if bcb is not None else NULL_LSN
        self.pool.drop(page_id)
        self._ship_log_records()
        page, _ = self.rpc.call("rebuild_page_for_client",
                                MsgType.PAGE_REQUEST,
                                payload=page_id, args=(page_id, rec_lsn))
        # The server now holds the authoritative dirty version; the
        # client's copy is clean relative to it.
        return self.pool.admit(page).page

    # ------------------------------------------------------------------
    # Crash / reconnect
    # ------------------------------------------------------------------

    def _require_up(self) -> None:
        if self.crashed:
            raise NodeUnavailableError(self.client_id)
        if not self.network.is_up(self.server.node_id):
            raise NodeUnavailableError(self.server.node_id)

    def crash(self) -> None:
        """Client failure: buffer pool, log buffer, lock state, and
        transaction table all vanish."""
        self.pool.clear()
        self.log.crash()
        self.llm.crash()
        self.txns.clear()
        self._p_locks.clear()
        self.commit_lsn = NULL_LSN
        self._table_commit_lsn.clear()
        self._floor_bound = NULL_LSN
        self.crashed = True
        self._commits_since_ckpt = 0
        self.network.crash(self.client_id)

    def reconnect(self) -> List[Tuple[str, Tuple]]:
        """Come back after a failure.

        The server already performed recovery on this client's behalf
        (section 2.6.1), so there is nothing to replay locally; only
        in-doubt transaction information is handed over for lock
        reacquisition.
        """
        self.network.restore(self.client_id)
        self.crashed = False
        self.server.connect_client(self)
        # Session re-establishment hand-over (uncharged, like the
        # connect itself: not part of the paper's message accounting).
        indoubt = self.rpc.call("indoubt_info_for", MsgType.COMMIT_REQUEST,
                                charge=False)
        for txn_id, locks, chain in indoubt:
            txn = self.txns.begin(txn_id)
            txn.state = TxnState.PREPARED
            # Restore the LSN chain so a later coordinator "abort" can
            # roll the branch back through the server-held log records.
            txn.last_lsn, txn.undo_next_lsn, txn.first_lsn = chain
            for resource_tuple, mode_value in locks:
                resource = tuple(resource_tuple)
                if len(resource) == 1:
                    resource = resource[0]
                self.llm.acquire(txn.txn_id, resource, LockMode(mode_value))
        return indoubt

    def repoint_server(self, server: Server) -> None:
        """Switch this client's session to a promoted server (DESIGN §15).

        Failover takeover is a stub swap: every protocol interaction
        funnels through ``self.rpc``, so re-pointing it at the new
        primary's node id moves the whole session.  Nothing else is
        touched — transactions, caches, the local log buffer and lock
        state all carry over, exactly as across a server restart (the
        promotion's roll-forward replays this client's unshipped tail
        the same way a restart does).
        """
        self.server = server
        self.layout = server.layout
        self.rpc = self.network.stub(self.client_id, server.node_id)
