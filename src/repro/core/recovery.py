"""The ARIES passes — analysis, redo, undo — parameterized for CSA.

The same three passes serve both restart flavors the paper describes:

* **server restart** (section 2.7): start at the server's last complete
  checkpoint, consider records from *all* systems;
* **failed-client recovery performed by the server** (section 2.6.1):
  start at the failed client's last complete checkpoint, consider *only*
  that client's records (they carry the client's identity precisely so
  this separation is possible).

One structural difference from single-system ARIES: LSNs are not log
addresses, so the undo pass cannot jump along PrevLSN pointers.  Instead
it scans the log *backward by address*, and undoes a record exactly when
its LSN matches the owning loser's expected UndoNxtLSN.  FIFO shipping
of client log buffers guarantees the prefix property that makes this
terminate: if a record is in the server log, all earlier records of that
client are too.

All three passes scan *headers*, not records: every filter they apply
(client identity, page id, DPL RecAddr, page_LSN, UndoNxtLSN match)
needs only the fields ``peek_header`` surfaces, so a full record is
materialized — via the stable log's decode LRU — only for the records
a pass actually consumes: checkpoint tables, redone updates, undone
updates, and whatever an ``observer`` asks to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Set

from repro.core.apply import (
    UndoEffect,
    apply_clr_redo,
    apply_redo,
    apply_undo_effect,
    physical_undo_effect,
    redo_needed,
)
from repro.core.log_records import (
    CDPLRecord,
    CompensationRecord,
    EndCheckpointRecord,
    EndRecord,
    FrameHeader,
    LogRecord,
    TxnOutcome,
    UpdateRecord,
)
from repro.core.lsn import LSN, LogAddr, NULL_ADDR, NULL_LSN
from repro.core.server_log import ServerLogManager
from repro.errors import RecoveryInvariantError
from repro.faults import FaultPlan
from repro.storage.page import Page


class RecoveryPageAccess(Protocol):
    """How recovery reaches pages (the server supplies the implementation)."""

    def fetch(self, page_id: int) -> Page:
        """Latest available version (buffer, else disk, else fresh frame)."""
        ...

    def mark_dirty(self, page_id: int, rec_addr: LogAddr) -> None:
        """The page image was changed by recovery; track it as dirty."""
        ...


class ClrWriter(Protocol):
    """How recovery emits log records (CLRs and abort/end records)."""

    def next_lsn(self, page_lsn: LSN) -> LSN: ...

    def append(self, record: LogRecord) -> LogAddr: ...


#: Logical undo hook: given an index update record, locate the current
#: home of the key and perform nothing — just report where and how to
#: compensate.  ``None`` entries fall back to physical undo.
LogicalUndoHandler = Callable[[UpdateRecord, RecoveryPageAccess], UndoEffect]


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------

@dataclass
class RestartTxn:
    """Transaction-table entry rebuilt by the analysis pass."""

    txn_id: str
    client_id: str
    state: str = "active"
    first_lsn: LSN = NULL_LSN
    last_lsn: LSN = NULL_LSN
    undo_next_lsn: LSN = NULL_LSN


@dataclass
class AnalysisResult:
    """What the analysis pass learned."""

    dpl: Dict[int, LogAddr] = field(default_factory=dict)
    txns: Dict[str, RestartTxn] = field(default_factory=dict)
    redo_addr: LogAddr = NULL_ADDR
    records_scanned: int = 0
    end_addr: LogAddr = 0
    #: Scanned records attributed to the client that wrote them.
    records_by_client: Dict[str, int] = field(default_factory=dict)

    def losers(self) -> Dict[str, RestartTxn]:
        """In-flight transactions the undo pass must roll back.

        Prepared (in-doubt) transactions survive restart untouched
        (section 1.1.2); committed-without-End transactions are winners.
        """
        return {
            txn_id: txn for txn_id, txn in self.txns.items()
            if txn.state == "active" and txn.undo_next_lsn != NULL_LSN
        }


def analysis_pass(
    log: ServerLogManager,
    start_addr: LogAddr,
    client_filter: Optional[Set[str]] = None,
    rebuild_log_bookkeeping: bool = False,
    observer: Optional[Callable[[LogRecord, LogAddr], None]] = None,
    faults: Optional[FaultPlan] = None,
    header_sink: Optional[Callable[[LogAddr, "FrameHeader"], None]] = None,
    header_observer: Optional[Callable[["FrameHeader", LogAddr], None]] = None,
) -> AnalysisResult:
    """Scan [start_addr, end) rebuilding the DPL and transaction table.

    ``client_filter`` restricts attention to the given clients' records
    (failed-client recovery).  With ``rebuild_log_bookkeeping`` the scan
    also repopulates the server log manager's per-client LSN/address
    pairs — used during server restart, when that volatile state was
    lost.  ``observer`` sees every scanned record (the server uses it to
    rebuild its global transaction tracker).  ``faults`` arms the
    per-record crashpoint that lets the explorer kill recovery itself
    mid-scan (restart must be restartable, section 2.5).  ``header_sink``
    sees every ``(addr, header)`` the scan visits — the hook that lets a
    fused recovery engine collect redo candidates during analysis
    instead of paying a second header scan over the same range.
    ``header_observer`` is the cheap form of ``observer``: it sees every
    ``(header, addr)`` without the full-record decode, which is all the
    transaction tracker needs; when both are given the header form wins.
    """
    result = AnalysisResult(end_addr=log.end_of_log_addr)
    for addr, header in log.scan_headers(start_addr):
        if faults is not None:
            faults.crashpoint("recovery.analysis.scan")
        if header_sink is not None:
            header_sink(addr, header)
        result.records_scanned += 1
        result.records_by_client[header.client_id] = (
            result.records_by_client.get(header.client_id, 0) + 1
        )
        if rebuild_log_bookkeeping:
            log.observe_during_restart(header.client_id, header.lsn, addr)
        if header_observer is not None:
            header_observer(header, addr)
        elif observer is not None:
            observer(log.read_at(addr), addr)
        tag = header.type_tag
        if tag == "ECP":
            ecp = log.read_at(addr)
            assert isinstance(ecp, EndCheckpointRecord)
            if client_filter is not None and ecp.owner not in client_filter:
                continue
            _merge_checkpoint(result, ecp)
            continue
        if tag == "BCP":
            continue
        if client_filter is not None and header.client_id not in client_filter:
            continue
        if tag == "CDP":
            cdpl = log.read_at(addr)
            assert isinstance(cdpl, CDPLRecord)
            for entry in cdpl.entries:
                _merge_dpl(result, entry.page_id, entry.rec_addr)
            continue
        if tag == "UPD" or tag == "CLR":
            if header.page_id >= 0 and header.page_id not in result.dpl:
                result.dpl[header.page_id] = addr
            txn = _txn_entry(result, header.txn_id, header.client_id)
            txn.last_lsn = header.lsn
            if txn.first_lsn == NULL_LSN:
                txn.first_lsn = header.lsn
            if tag == "CLR":
                txn.undo_next_lsn = header.undo_next_lsn
            elif not header.redo_only:
                txn.undo_next_lsn = header.lsn
            continue
        if tag == "CMT":
            _txn_entry(result, header.txn_id, header.client_id).state = "committed"
        elif tag == "PRE":
            _txn_entry(result, header.txn_id, header.client_id).state = "prepared"
        elif tag == "END" and header.txn_id is not None:
            result.txns.pop(header.txn_id, None)
    result.redo_addr = min(result.dpl.values()) if result.dpl else result.end_addr
    return result


def _txn_entry(result: AnalysisResult, txn_id: Optional[str],
               client_id: str) -> RestartTxn:
    assert txn_id is not None
    txn = result.txns.get(txn_id)
    if txn is None:
        txn = RestartTxn(txn_id, client_id)
        result.txns[txn_id] = txn
    return txn


def _merge_dpl(result: AnalysisResult, page_id: int, rec_addr: LogAddr) -> None:
    if rec_addr == NULL_ADDR:
        return
    current = result.dpl.get(page_id)
    if current is None or rec_addr < current:
        result.dpl[page_id] = rec_addr


def _merge_checkpoint(result: AnalysisResult, record: EndCheckpointRecord) -> None:
    """Fold an End_Checkpoint's DPL and transaction table into the result.

    Minima win for RecAddrs (the checkpoint may know an older bound than
    the first in-scan record for the page); transactions already seen in
    the scan keep their fresher in-scan state.
    """
    for entry in record.dirty_pages:
        _merge_dpl(result, entry.page_id, entry.rec_addr)
    for txn_entry in record.transactions:
        if txn_entry.txn_id in result.txns:
            continue
        result.txns[txn_entry.txn_id] = RestartTxn(
            txn_id=txn_entry.txn_id,
            client_id=txn_entry.client_id,
            state=txn_entry.state,
            first_lsn=txn_entry.first_lsn,
            last_lsn=txn_entry.last_lsn,
            undo_next_lsn=txn_entry.undo_next_lsn,
        )


# ---------------------------------------------------------------------------
# Redo
# ---------------------------------------------------------------------------

@dataclass
class RedoStats:
    records_scanned: int = 0
    records_considered: int = 0
    redos_applied: int = 0
    #: Applied redos attributed to the client that wrote the record.
    applied_by_client: Dict[str, int] = field(default_factory=dict)


def redo_pass(
    log: ServerLogManager,
    analysis: AnalysisResult,
    pages: RecoveryPageAccess,
    client_filter: Optional[Set[str]] = None,
    faults: Optional[FaultPlan] = None,
) -> RedoStats:
    """Repeat history: reapply every missing update recorded in the log.

    A record is considered only if its page is in the DPL with
    ``RecAddr <= record address`` (the DPL-as-filter rule of section
    1.1.2) and applied only if ``page_LSN < record LSN``.
    """
    stats = RedoStats()
    for addr, header in log.scan_headers(analysis.redo_addr, analysis.end_addr):
        if faults is not None:
            faults.crashpoint("recovery.redo.scan")
        stats.records_scanned += 1
        if not header.is_redoable():
            continue
        if client_filter is not None and header.client_id not in client_filter:
            continue
        page_id = header.page_id
        if page_id < 0:
            continue  # dummy CLRs have no page effect
        rec_addr = analysis.dpl.get(page_id)
        if rec_addr is None or addr < rec_addr:
            continue
        stats.records_considered += 1
        page = pages.fetch(page_id)
        if not redo_needed(page, header.lsn):
            continue
        record = log.read_at(addr)
        if isinstance(record, UpdateRecord):
            apply_redo(page, record)
        else:
            assert isinstance(record, CompensationRecord)
            apply_clr_redo(page, record)
        pages.mark_dirty(page_id, rec_addr)
        stats.redos_applied += 1
        stats.applied_by_client[header.client_id] = (
            stats.applied_by_client.get(header.client_id, 0) + 1
        )
    return stats


# ---------------------------------------------------------------------------
# Undo
# ---------------------------------------------------------------------------

@dataclass
class UndoStats:
    records_scanned: int = 0
    clrs_written: int = 0
    txns_rolled_back: int = 0
    #: CLRs attributed to the client whose transaction was undone.
    clrs_by_client: Dict[str, int] = field(default_factory=dict)


def undo_pass(
    log: ServerLogManager,
    losers: Dict[str, RestartTxn],
    pages: RecoveryPageAccess,
    clr_writer: ClrWriter,
    logical_undo: Optional[LogicalUndoHandler] = None,
    faults: Optional[FaultPlan] = None,
) -> UndoStats:
    """Roll back the losers, writing CLRs in their names.

    Single backward scan of the log; a record is undone when its LSN
    matches its transaction's expected UndoNxtLSN.  CLRs encountered in
    the log skip the expectation past work already compensated, which is
    what bounds logging under repeated failures.
    """
    stats = UndoStats()
    expected: Dict[str, LSN] = {}
    last_lsn: Dict[str, LSN] = {}
    for txn_id, txn in losers.items():
        if txn.undo_next_lsn != NULL_LSN:
            expected[txn_id] = txn.undo_next_lsn
            last_lsn[txn_id] = txn.last_lsn
    for txn_id in list(losers):
        if txn_id not in expected:
            _finish_rollback(clr_writer, losers[txn_id], losers[txn_id].last_lsn)
            stats.txns_rolled_back += 1
    if not expected:
        return stats

    for addr, header in log.scan_headers_backward():
        if not expected:
            break
        if faults is not None:
            faults.crashpoint("recovery.undo.scan")
        stats.records_scanned += 1
        txn_id = header.txn_id
        if txn_id is None or txn_id not in expected:
            continue
        if header.lsn != expected[txn_id]:
            continue
        txn = losers[txn_id]
        if header.is_clr():
            expected[txn_id] = header.undo_next_lsn
        elif header.is_update():
            if header.redo_only:
                expected[txn_id] = header.prev_lsn
            else:
                record = log.read_at(addr)
                assert isinstance(record, UpdateRecord)
                clr_lsn = _undo_one(
                    record, pages, clr_writer, txn, last_lsn[txn_id], logical_undo
                )
                last_lsn[txn_id] = clr_lsn
                expected[txn_id] = record.prev_lsn
                stats.clrs_written += 1
                stats.clrs_by_client[txn.client_id] = (
                    stats.clrs_by_client.get(txn.client_id, 0) + 1
                )
        else:
            raise RecoveryInvariantError(
                f"undo chain of {txn_id} points at non-undoable "
                f"{header.type_name} (lsn {header.lsn})"
            )
        if expected[txn_id] == NULL_LSN:
            del expected[txn_id]
            _finish_rollback(clr_writer, txn, last_lsn[txn_id])
            stats.txns_rolled_back += 1

    if expected:
        raise RecoveryInvariantError(
            f"undo could not resolve chains for {sorted(expected)}; "
            "the prefix property was violated"
        )
    return stats


def _undo_one(
    record: UpdateRecord,
    pages: RecoveryPageAccess,
    clr_writer: ClrWriter,
    txn: RestartTxn,
    prev_lsn: LSN,
    logical_undo: Optional[LogicalUndoHandler],
) -> LSN:
    """Undo a single record: apply the compensation and log the CLR."""
    if record.undo_is_logical() and logical_undo is not None:
        effect = logical_undo(record, pages)
    else:
        effect = physical_undo_effect(record)
    page = pages.fetch(effect.page_id)
    clr_lsn = clr_writer.next_lsn(page.page_lsn)
    apply_undo_effect(page, effect, clr_lsn)
    clr = CompensationRecord(
        lsn=clr_lsn,
        client_id=txn.client_id,
        txn_id=txn.txn_id,
        prev_lsn=prev_lsn,
        undo_next_lsn=record.prev_lsn,
        page_id=effect.page_id,
        op=effect.op,
        slot=effect.slot,
        after=effect.after,
        key=effect.key,
    )
    addr = clr_writer.append(clr)
    pages.mark_dirty(effect.page_id, addr)
    return clr_lsn


def _finish_rollback(clr_writer: ClrWriter, txn: RestartTxn,
                     prev_lsn: LSN) -> None:
    """Write the End record closing a fully undone loser."""
    end = EndRecord(
        lsn=clr_writer.next_lsn(NULL_LSN),
        client_id=txn.client_id,
        txn_id=txn.txn_id,
        prev_lsn=prev_lsn,
        outcome=TxnOutcome.ABORTED,
    )
    clr_writer.append(end)
