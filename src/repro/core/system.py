"""The whole complex: one server, N clients, crash/recovery orchestration.

:class:`ClientServerSystem` is the top-level entry point of the library
(see ``examples/quickstart.py``).  It wires the network, the server and
the clients together under one :class:`~repro.config.SystemConfig`,
offers a small catalog (tables as sets of pages, for intent locks and
workloads), and exposes the failure injection the paper's scenarios
need: client crashes (server performs recovery on the client's behalf),
server crashes (restart recovery, lock-table reconstruction from the
survivors), and whole-complex crashes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.client import Client
from repro.core.server import RecoveryReport, Server
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.net.network import Network
from repro.net.rpc import retry_policy_from_config, transport_from_config
from repro.obs.flight import FlightRecorder
from repro.obs.hist import MetricsHub
from repro.obs.tracer import Tracer
from repro.records.heap import RecordId, decode_value
from repro.sanitizer import Sanitizer
from repro.storage.page import Page

if TYPE_CHECKING:
    from repro.replication.manager import ReplicationManager


class ClientServerSystem:
    """A simulated ARIES/CSA complex."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 client_ids: Iterable[str] = ("C1", "C2")) -> None:
        self.config = config if config is not None else SystemConfig()
        self.network = Network(
            transport=transport_from_config(self.config),
            retry=retry_policy_from_config(self.config),
            trace_depth=self.config.message_trace_depth,
        )
        self.server = Server(self.config, self.network)
        self.clients: Dict[str, Client] = {}
        #: Present only when tracing is on; attachment IS the enable
        #: switch — unattached hooks cost one pointer comparison.
        self.tracer: Optional[Tracer] = None
        #: Present only when fault injection is on; same attachment
        #: pattern as the tracer.
        self.faults: Optional[FaultPlan] = None
        #: Present only when the runtime latch/lock-order sanitizer is
        #: on; same attachment pattern as the tracer.
        self.sanitizer: Optional[Sanitizer] = None
        #: Present only when the histogram/time-series plane is on;
        #: same attachment pattern as the tracer.
        self.metrics: Optional[MetricsHub] = None
        #: Present only when the crash flight recorder is armed; fed by
        #: the tracer's per-event tap.
        self.flight: Optional[FlightRecorder] = None
        #: Present only when the warm standby is on; same attachment
        #: pattern as the tracer (DESIGN §15).
        self.replication: Optional["ReplicationManager"] = None
        if self.config.trace_enabled:
            self.attach_tracer(Tracer())
        if self.config.fault_plan is not None:
            self.attach_faults(self.config.fault_plan)
        if self.config.sanitizer:
            self.attach_sanitizer(Sanitizer())
        if self.config.metrics_enabled:
            self.attach_metrics(MetricsHub())
        if self.config.flight_recorder_depth > 0:
            self.attach_flight(
                FlightRecorder(self.config.flight_recorder_depth))
        self._tables: Dict[str, List[int]] = {}
        self._page_table: Dict[int, str] = {}
        self._free_pool: List[int] = []
        # The server's transaction tracker resolves pages to tables for
        # per-table Commit_LSN (section 3's per-file refinement).
        self.server.tracker.table_resolver = self._page_table.get
        for client_id in client_ids:
            self.add_client(client_id)
        if self.config.replication_enabled:
            self.attach_replication()

    # -- observability -----------------------------------------------------

    def attach_tracer(self, tracer: Tracer) -> None:
        """Attach ``tracer`` to every instrumented object of the complex.

        Idempotent per object: attaching replaces any previous tracer.
        Clients added later are attached by :meth:`add_client`.
        """
        self.tracer = tracer
        self.network.tracer = tracer
        self.server.tracer = tracer
        self.server.pool.tracer = tracer
        self.server.log.attach_tracer(tracer)
        if self.faults is not None:
            self.faults.tracer = tracer
        for client in self.clients.values():
            self._attach_client_tracer(client)

    def _attach_client_tracer(self, client: Client) -> None:
        assert self.tracer is not None
        client.tracer = self.tracer
        client.pool.tracer = self.tracer
        client.llm.tracer = self.tracer

    def attach_metrics(self, hub: MetricsHub) -> None:
        """Attach the histogram/time-series hub to every observation site.

        The mirror of :meth:`attach_tracer`: attachment IS the enable
        switch, so a complex without a hub pays one pointer comparison
        per observation site.  The engine (``repro.engine``) reads
        ``system.metrics`` directly; recovery engines receive the hub
        through ``RecoveryContext.metrics``.
        """
        self.metrics = hub
        self.network.metrics = hub
        self.server.metrics = hub
        self.server.log.attach_metrics(hub)

    def attach_flight(self, recorder: FlightRecorder) -> None:
        """Arm the crash flight recorder (tapping the tracer's stream).

        The recorder needs a trace stream to ring-buffer, so arming a
        complex with no tracer attaches one first.
        """
        tracer = self.tracer
        if tracer is None:
            tracer = Tracer()
            self.attach_tracer(tracer)
        self.flight = recorder
        tracer.flight = recorder

    # -- replication -------------------------------------------------------

    def attach_replication(self) -> "ReplicationManager":
        """Stand up the warm standby and start shipping (DESIGN §15).

        The mirror of :meth:`attach_tracer`: attachment IS the enable
        switch.  A complex without a manager has ``server.replication``
        set to None and every ship hook costs one pointer comparison —
        replication off is byte-for-byte the pre-replication complex.
        """
        from repro.replication.manager import ReplicationManager

        manager = ReplicationManager(self)
        self.replication = manager
        manager.bootstrap_standby()
        return manager

    # -- fault injection ---------------------------------------------------

    def attach_faults(self, plan: FaultPlan) -> None:
        """Attach ``plan`` to every instrumented object of the complex.

        The mirror of :meth:`attach_tracer`: attachment IS the enable
        switch, so a complex without a plan pays one pointer comparison
        per hook.  The network transport is attached separately via
        ``SystemConfig.fault_plan`` (``transport_from_config`` folds the
        drop/delay RNG under the plan's ``transport`` namespace).
        """
        self.faults = plan
        plan.tracer = self.tracer
        self.network.faults = plan
        self.server.faults = plan
        self.server.disk.faults = plan
        self.server.archive.faults = plan
        self.server.pool.faults = plan
        self.server.log.stable.faults = plan
        for client in self.clients.values():
            self._attach_client_faults(client)

    def _attach_client_faults(self, client: Client) -> None:
        assert self.faults is not None
        client.faults = self.faults
        client.pool.faults = self.faults

    # -- runtime sanitizer -------------------------------------------------

    def attach_sanitizer(self, sanitizer: Sanitizer) -> None:
        """Attach ``sanitizer`` to every latch/lock/log hook of the complex.

        The mirror of :meth:`attach_tracer`: attachment IS the enable
        switch, so a complex without a sanitizer pays one pointer
        comparison per hook.  One instance watches the whole complex —
        the acquisition-order memory must span actors to catch an
        inversion split across two clients.
        """
        self.sanitizer = sanitizer
        self.server.sanitizer = sanitizer
        self.server.pool.sanitizer = sanitizer
        self.server.log.stable.sanitizer = sanitizer
        self.server.glm.logical.sanitizer = sanitizer
        self.server.glm.physical.sanitizer = sanitizer
        for client in self.clients.values():
            self._attach_client_sanitizer(client)

    def _attach_client_sanitizer(self, client: Client) -> None:
        assert self.sanitizer is not None
        client.sanitizer = self.sanitizer
        client.pool.sanitizer = self.sanitizer
        client.llm.local.sanitizer = self.sanitizer

    # -- topology ----------------------------------------------------------

    def add_client(self, client_id: str) -> Client:
        if client_id in self.clients:
            raise ReproError(f"client id {client_id} already in use")
        client = Client(client_id, self.config, self.network, self.server)
        client.table_of = self._page_table.get
        self.clients[client_id] = client
        if self.tracer is not None:
            self._attach_client_tracer(client)
        if self.faults is not None:
            self._attach_client_faults(client)
        if self.sanitizer is not None:
            self._attach_client_sanitizer(client)
        return client

    def client(self, client_id: str) -> Client:
        return self.clients[client_id]

    # -- catalog -----------------------------------------------------------

    def bootstrap(self, data_pages: int, free_pages: int = 64) -> List[int]:
        """Format the database offline; returns the allocated page ids."""
        pages = self.server.bootstrap(data_pages, free_pages)
        self._free_pool = list(pages)
        if self.replication is not None:
            # Formatting writes pages without logging them, so the
            # standby's bootstrap snapshot must be retaken.
            self.replication.bootstrap_standby()
        return pages

    def create_table(self, name: str, num_pages: int) -> List[int]:
        """Assign ``num_pages`` bootstrapped pages to a named table.

        Tables drive the lock hierarchy (intent locks at table level,
        record/page locks below) and give workloads stable page sets.
        """
        if name in self._tables:
            raise ReproError(f"table {name} already exists")
        if len(self._free_pool) < num_pages:
            raise ReproError(
                f"not enough bootstrapped pages for table {name}: "
                f"need {num_pages}, have {len(self._free_pool)}"
            )
        pages = [self._free_pool.pop(0) for _ in range(num_pages)]
        self._tables[name] = pages
        for page_id in pages:
            self._page_table[page_id] = name
        return pages

    def table_pages(self, name: str) -> List[int]:
        return list(self._tables[name])

    # -- failure injection ---------------------------------------------------

    def crash_client(self, client_id: str, recover: bool = True) -> Optional[RecoveryReport]:
        """Crash a client; by default the server notices and recovers it
        immediately (section 2.6.1)."""
        self.clients[client_id].crash()
        if recover and not self.server.crashed:
            return self.server.recover_failed_client(client_id)
        return None

    def reconnect_client(self, client_id: str) -> List[Tuple[str, Tuple]]:
        return self.clients[client_id].reconnect()

    def crash_server(self) -> None:
        self.server.crash()

    def restart_server(self) -> RecoveryReport:
        report = self.server.restart()
        return report

    def crash_all(self) -> None:
        """Power failure: every node in the complex goes down at once."""
        for client in self.clients.values():
            if not client.crashed:
                client.crash()
        self.server.crash()

    def restart_all(self) -> RecoveryReport:
        """Recover the whole complex after a total failure.

        The server restarts first (rolling back every in-flight
        transaction, including the crashed clients'), then clients
        reconnect with clean state.
        """
        report = self.server.restart(failed_clients=set(self.clients))
        for client_id in sorted(self.clients):
            self.clients[client_id].reconnect()
        return report

    # -- oracles (tests and examples) -------------------------------------------

    def server_visible_value(self, rid: RecordId) -> Any:
        """The record value as the server's authoritative version has it."""
        page = self.server.authoritative_page(rid.page_id)
        return decode_value(page.read_record(rid.slot))

    def current_value(self, rid: RecordId) -> Any:
        """The logically current value, wherever the freshest copy lives
        (a client holding the update privilege, else the server)."""
        owner = self.server.glm.update_privilege_owner(rid.page_id)
        if owner is not None and owner in self.clients:
            client = self.clients[owner]
            if not client.crashed:
                page = client.pool.peek(rid.page_id)
                if page is not None:
                    return decode_value(page.read_record(rid.slot))
        return self.server_visible_value(rid)

    def server_visible_page(self, page_id: int) -> Page:
        return self.server.authoritative_page(page_id)
