"""The server's log manager: the single log plus CSA bookkeeping.

Beyond owning the stable log, the server-side log manager keeps the
mappings section 2.5.2 calls for:

* per client, a set of ``<LSN, address>`` pairs built as records arrive,
  used to map a client-reported RecLSN to an exact (or conservatively
  lower) RecAddr;
* per client, the address of the most recent record received — the
  conservative ForceAddr assigned to dirty pages arriving from that
  client (section 2.2);
* the global maximum LSN seen across all clients, which is the
  ``Max_LSN`` the server distributes for the Lamport-clock proximity
  scheme of section 3.

All of this is volatile; after a server crash the pairs are rebuilt from
the restart analysis scan, and RecLSNs that cannot be mapped fall back
to conservative bounds supplied by the caller.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.core.log_records import FrameHeader, LogRecord
from repro.core.lsn import LSN, LogAddr, LsnClock, NULL_ADDR
from repro.storage.stable_log import StableLog

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer


class GroupForceScheduler:
    """Server-side group commit: coalesce commit forces into one I/O.

    The paper's force accounting already treats a force that rides a
    prior one as free (``StableLog.force`` is a counted no-op when the
    target is stable); this scheduler makes the batching *active*.
    Commit forces arriving while the window is open are deferred, and
    one device force covers the whole group once ``window`` of them
    have accumulated — or immediately, merged into the same I/O, when a
    synchronous force (WAL safety, privilege transfer, checkpointing,
    recovery) comes through.

    Deferring a commit force is crash-safe in ARIES/CSA terms: the
    committing client keeps every log record in its virtual-storage
    buffer until the server confirms it stable (section 2.1), and after
    a server crash restart replays the survivors' unstable tails.  What
    the window trades is only *when* the commit acknowledgement becomes
    durable, which is the classic group-commit latency/throughput trade.

    ``window <= 1`` (the default configuration) disables deferral:
    every commit force is issued immediately, preserving the historical
    force counts byte for byte.
    """

    def __init__(self, stable: StableLog, window: int = 0) -> None:
        self.stable = stable
        self.window = window
        #: Attached by the owning complex; ``None`` disables the hooks.
        self.tracer: Optional["Tracer"] = None
        #: Attached by the owning complex; ``None`` disables the
        #: group-commit batch-size histogram (repro.obs.hist).
        self.metrics: Any = None
        self.commit_requests = 0
        self.sync_requests = 0
        #: Device forces that covered more than one deferred commit.
        self.group_forces = 0
        #: Commit forces that never became their own device force.
        self.forces_saved = 0
        self._pending = 0
        self._pending_target: LogAddr = 0

    @property
    def pending(self) -> int:
        """Commit forces currently deferred in the open window."""
        return self._pending

    def commit_force(self, up_to_addr: Optional[LogAddr] = None) -> LogAddr:
        """A commit/ship force request; may be deferred into the window.

        Returns the flushed boundary the caller should report — with an
        open window that boundary may not yet cover the commit record,
        and the client correspondingly keeps its records buffered.
        """
        self.commit_requests += 1
        target = self.stable.end_of_log_addr if up_to_addr is None else up_to_addr
        if self.window <= 1:
            before = self.stable.forces
            self.stable.force(target)
            if self.stable.forces == before:
                self.forces_saved += 1  # rode an earlier force: no I/O
            return self.stable.flushed_addr
        if target <= self.stable.flushed_addr:
            self.forces_saved += 1
            return self.stable.flushed_addr
        self._pending += 1
        if target > self._pending_target:
            self._pending_target = target
        if self.tracer is not None:
            self.tracer.instant("log", "commit_force_deferred", "server",
                                pending=self._pending, target=target)
        if self._pending >= self.window:
            self.flush_pending()
        return self.stable.flushed_addr

    def flush_pending(self) -> None:
        """Issue the single device force covering every deferred commit."""
        if not self._pending:
            return
        riders = self._pending
        target = self._pending_target
        self._pending = 0
        self._pending_target = 0
        before = self.stable.forces
        self.stable.force(target)
        if self.stable.forces > before:
            self.group_forces += 1
            self.forces_saved += riders - 1
            if self.tracer is not None:
                self.tracer.instant("log", "group_force", "server",
                                    riders=riders, target=target)
            if self.metrics is not None:
                self.metrics.group_commit_batch.observe(riders)
        else:
            # An interleaved synchronous force already covered the group.
            self.forces_saved += riders

    def force_now(self, up_to_addr: Optional[LogAddr] = None) -> None:
        """Immediate force (WAL, privilege transfer, checkpoint, recovery).

        Any open commit window is merged into the same device force —
        correctness paths never wait on the group.
        """
        self.sync_requests += 1
        riders = self._pending
        if riders:
            self._pending = 0
            if up_to_addr is not None and self._pending_target > up_to_addr:
                up_to_addr = self._pending_target
            self._pending_target = 0
        before = self.stable.forces
        self.stable.force(up_to_addr)
        if riders:
            if self.stable.forces > before:
                self.group_forces += 1
                if self.tracer is not None:
                    self.tracer.instant("log", "group_force", "server",
                                        riders=riders, sync=True)
                if self.metrics is not None:
                    self.metrics.group_commit_batch.observe(riders)
            self.forces_saved += riders

    def note_crash(self) -> None:
        """The volatile tail is gone; deferred commit forces die with it."""
        self._pending = 0
        self._pending_target = 0


class ServerLogManager:
    """Stable log ownership plus the LSN/address bookkeeping of CSA."""

    def __init__(self, group_commit_window: int = 0) -> None:
        self.stable = StableLog()
        self.group = GroupForceScheduler(self.stable, group_commit_window)
        #: The server's own LSN stream (checkpoint records, CLRs written
        #: on behalf of failed clients, server-resident transactions).
        self.clock = LsnClock()
        #: Per client: parallel sorted lists of LSNs and their addresses.
        self._pair_lsns: Dict[str, List[LSN]] = {}
        self._pair_addrs: Dict[str, List[LogAddr]] = {}
        self._last_addr_from: Dict[str, LogAddr] = {}
        self.client_records_received = 0

    def attach_tracer(self, tracer: "Tracer") -> None:
        """Enable tracing on the stable log and the group scheduler."""
        self.stable.tracer = tracer
        self.group.tracer = tracer

    def attach_metrics(self, hub: Any) -> None:
        """Enable the force/group-commit histograms (repro.obs.hist)."""
        self.stable.metrics = hub
        self.group.metrics = hub

    # -- appending ----------------------------------------------------------

    def append_local(self, record: LogRecord) -> LogAddr:
        """Append a record produced by the server itself."""
        self.clock.observe_lsn(record.lsn)
        addr = self.stable.append(record)
        self._note_pair(record.client_id, record.lsn, addr)
        return addr

    def append_from_client(self, client_id: str,
                           records: List[LogRecord]) -> List[Tuple[LSN, LogAddr]]:
        """Append a shipped batch; returns the assigned (lsn, addr) pairs."""
        assigned: List[Tuple[LSN, LogAddr]] = []
        for record in records:
            addr = self.stable.append(record)
            self._note_pair(client_id, record.lsn, addr)
            self._last_addr_from[client_id] = addr
            self.clock.observe_lsn(record.lsn)
            assigned.append((record.lsn, addr))
            self.client_records_received += 1
        return assigned

    def _note_pair(self, client_id: str, lsn: LSN, addr: LogAddr) -> None:
        lsns = self._pair_lsns.setdefault(client_id, [])
        addrs = self._pair_addrs.setdefault(client_id, [])
        if lsns and lsn <= lsns[-1]:
            # LSNs from one system are monotonic; a duplicate would break
            # the binary search.  Tolerate re-observation during restart.
            return
        lsns.append(lsn)
        addrs.append(addr)

    def observe_during_restart(self, client_id: str, lsn: LSN,
                               addr: LogAddr) -> None:
        """Rebuild the pair sets while the restart analysis scans the log."""
        self._note_pair(client_id, lsn, addr)
        if addr > self._last_addr_from.get(client_id, NULL_ADDR):
            self._last_addr_from[client_id] = addr

    # -- mapping (section 2.5.2) ------------------------------------------------

    def addr_for_rec_lsn(self, client_id: str, rec_lsn: LSN) -> Optional[LogAddr]:
        """Map a client RecLSN to a RecAddr.

        RecLSN semantics: every update record for the page carries an LSN
        strictly greater than RecLSN.  The exact answer is therefore the
        address of the first record from this client with LSN > RecLSN;
        when only older pairs exist the result is conservatively lower.
        Returns None when nothing is known about the client's stream
        (post-crash; the caller substitutes a conservative floor).
        """
        lsns = self._pair_lsns.get(client_id)
        if not lsns:
            return None
        index = bisect.bisect_right(lsns, rec_lsn)
        if index < len(lsns):
            return self._pair_addrs[client_id][index]
        # All known records have LSN <= RecLSN: their updates are already
        # covered, so scanning from the current end of log is safe — any
        # qualifying record is yet to arrive.
        return self.stable.end_of_log_addr

    def addr_of_lsn(self, client_id: str, lsn: LSN) -> Optional[LogAddr]:
        """Exact address of the record a client wrote with this LSN.

        The chain-walking recovery engines use this to jump an undo
        chain (expected UndoNxtLSN -> record address) instead of the
        serial backward scan: LSNs within one system are unique and
        monotonic, so the pair lists answer with one binary search.
        Returns ``None`` when the pair is unknown (conservative callers
        fall back to the scanning undo pass).
        """
        lsns = self._pair_lsns.get(client_id)
        if not lsns:
            return None
        index = bisect.bisect_left(lsns, lsn)
        if index < len(lsns) and lsns[index] == lsn:
            return self._pair_addrs[client_id][index]
        return None

    def force_addr_for_client(self, client_id: str) -> LogAddr:
        """Conservative ForceAddr for a dirty page arriving from a client:
        the address of the most recent log record received from it."""
        return self._last_addr_from.get(client_id, NULL_ADDR)

    @property
    def max_lsn_seen(self) -> LSN:
        """Global Max_LSN across the complex (section 3)."""
        return self.clock.local_max_lsn

    # -- passthroughs -----------------------------------------------------------

    def force(self, up_to_addr: Optional[LogAddr] = None) -> None:
        """Synchronous force; flushes any open group-commit window too."""
        self.group.force_now(up_to_addr)

    def commit_force(self, up_to_addr: Optional[LogAddr] = None) -> LogAddr:
        """Commit-path force, eligible for group-commit deferral.

        Returns the flushed boundary to report to the committing client.
        """
        return self.group.commit_force(up_to_addr)

    @property
    def flushed_addr(self) -> LogAddr:
        return self.stable.flushed_addr

    @property
    def end_of_log_addr(self) -> LogAddr:
        return self.stable.end_of_log_addr

    def scan(self, from_addr: LogAddr = 0,
             to_addr: Optional[LogAddr] = None) -> Iterator[Tuple[LogAddr, LogRecord]]:
        return self.stable.scan(from_addr, to_addr)

    def scan_backward(self, from_addr: Optional[LogAddr] = None,
                      down_to_addr: LogAddr = 0) -> Iterator[Tuple[LogAddr, LogRecord]]:
        return self.stable.scan_backward(from_addr, down_to_addr)

    def scan_headers(self, from_addr: LogAddr = 0,
                     to_addr: Optional[LogAddr] = None
                     ) -> Iterator[Tuple[LogAddr, FrameHeader]]:
        return self.stable.scan_headers(from_addr, to_addr)

    def scan_headers_backward(self, from_addr: Optional[LogAddr] = None,
                              down_to_addr: LogAddr = 0
                              ) -> Iterator[Tuple[LogAddr, FrameHeader]]:
        return self.stable.scan_headers_backward(from_addr, down_to_addr)

    def read_at(self, addr: LogAddr) -> LogRecord:
        return self.stable.read_at(addr)

    def header_at(self, addr: LogAddr) -> FrameHeader:
        return self.stable.header_at(addr)

    # -- crash model --------------------------------------------------------------

    def crash(self) -> None:
        """Server crash: stable prefix survives, bookkeeping does not."""
        self.group.note_crash()
        self.stable.crash()
        self.clock = LsnClock()
        self._pair_lsns.clear()
        self._pair_addrs.clear()
        self._last_addr_from.clear()
