"""The client's local log manager (sections 2.1, 2.2).

Clients have no log disks.  This log manager behaves like a regular one
except that "writing" a record means buffering it in virtual storage;
batches are shipped to the server (a) just before any dirty page is sent
back and (b) at commit, whichever comes first.

A record may be discarded from the local buffer only once the server
confirms it is on *stable* storage (not merely appended to the server's
volatile log tail): if the server crashed after an append-only ack, the
record would exist nowhere, yet the client still holds cached dirty
pages containing its update.  The manager therefore tracks, per record,
the server log address assigned at shipping time, and prunes on every
piggybacked advance of the server's flushed address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.log_records import LogRecord
from repro.core.lsn import LSN, LogAddr, LsnClock, NULL_ADDR


@dataclass
class BufferedRecord:
    """A log record held in client virtual storage."""

    record: LogRecord
    #: Server log address once shipped; NULL_ADDR while local-only.
    addr: LogAddr = NULL_ADDR

    @property
    def shipped(self) -> bool:
        return self.addr != NULL_ADDR


class ClientLogManager:
    """Virtual-storage log buffering with local LSN assignment."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self.clock = LsnClock()
        self._buffer: List[BufferedRecord] = []
        #: Index of the first record not yet shipped to the server.
        self._ship_cursor = 0
        #: Rollback lookup index: (txn_id, lsn) -> buffered record.  LSNs
        #: are unique within a client's stream, so the pair is a key.
        self._by_txn_lsn: Dict[Tuple[Optional[str], LSN], LogRecord] = {}
        self.records_written = 0
        self.batches_shipped = 0
        self.records_pruned = 0

    # -- writing -----------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Buffer a record the client just built (LSN already assigned)."""
        self._buffer.append(BufferedRecord(record))
        self._by_txn_lsn[(record.txn_id, record.lsn)] = record
        self.records_written += 1

    def next_lsn(self, page_lsn: LSN = 0) -> LSN:
        """Assign the next LSN per the section 2.2 rule."""
        return self.clock.next_lsn(page_lsn)

    # -- shipping ----------------------------------------------------------

    def unshipped(self) -> List[LogRecord]:
        """Records awaiting their first trip to the server, in order."""
        return [entry.record for entry in self._buffer[self._ship_cursor:]]

    def has_unshipped(self) -> bool:
        return self._ship_cursor < len(self._buffer)

    def note_shipped(self, assigned: List[Tuple[LSN, LogAddr]]) -> None:
        """Record the addresses the server assigned to the shipped batch.

        ``assigned`` pairs (lsn, addr) in shipping order; shipping is
        strictly FIFO, which preserves the prefix property recovery
        relies on (a record in the server log implies all its
        predecessors from this client are too).
        """
        if assigned:
            self.batches_shipped += 1
        for lsn, addr in assigned:
            entry = self._buffer[self._ship_cursor]
            if entry.record.lsn != lsn:
                raise ValueError(
                    f"ship ack out of order: expected lsn {entry.record.lsn}, got {lsn}"
                )
            entry.addr = addr
            self._ship_cursor += 1

    # -- pruning ------------------------------------------------------------

    def prune_stable(self, server_flushed_addr: LogAddr) -> int:
        """Discard records now stable at the server; returns count dropped."""
        dropped = 0
        while dropped < len(self._buffer):
            entry = self._buffer[dropped]
            if not entry.shipped or entry.addr >= server_flushed_addr:
                break
            dropped += 1
        if dropped:
            for entry in self._buffer[:dropped]:
                self._by_txn_lsn.pop((entry.record.txn_id, entry.record.lsn), None)
            # One slice deletion instead of `dropped` pop(0) shifts.
            del self._buffer[:dropped]
            self._ship_cursor -= dropped
            self.records_pruned += dropped
        return dropped

    def unstable_records(self, server_flushed_addr: LogAddr) -> List[Tuple[LogAddr, LogRecord]]:
        """Shipped records the server's crash lost, with their OLD addresses.

        Used by the server's restart replay: lost tails from all clients
        must re-enter the log merged in original address order, or redo's
        repeat-history-in-log-order guarantee breaks for pages whose
        update privilege moved between clients just before the crash.
        """
        return [
            (entry.addr, entry.record)
            for entry in self._buffer
            if entry.shipped and entry.addr >= server_flushed_addr
        ]

    def note_replayed(self, lsn: LSN, new_addr: LogAddr) -> None:
        """The server re-appended a lost record at a new address."""
        for entry in self._buffer:
            if entry.shipped and entry.record.lsn == lsn:
                entry.addr = new_addr
                return
        raise ValueError(f"replayed record lsn {lsn} not found in buffer")

    def requeue_unstable(self, server_flushed_addr: LogAddr) -> int:
        """After a server crash: re-queue records the server's log lost.

        The server's unforced log tail vanished, so any record whose
        assigned address is at or beyond the post-crash flushed boundary
        must be shipped again (the client still holds it, because records
        are only discarded once confirmed stable — exactly why that rule
        exists).  Returns the number of records re-queued.
        """
        requeued = 0
        for index, entry in enumerate(self._buffer):
            if entry.shipped and entry.addr < server_flushed_addr:
                continue
            for later in self._buffer[index:]:
                later.addr = NULL_ADDR
            requeued = len(self._buffer) - index
            self._ship_cursor = index
            break
        return requeued

    # -- reading (normal rollback, section 2.4) -------------------------------

    def find_local(self, txn_id: str, lsn: LSN) -> Optional[LogRecord]:
        """A transaction's record if still buffered locally, else None
        (the rollback path then fetches it from the server)."""
        return self._by_txn_lsn.get((txn_id, lsn))

    def buffered_count(self) -> int:
        return len(self._buffer)

    def buffered_records(self) -> Iterator[LogRecord]:
        return (entry.record for entry in self._buffer)

    # -- crash model -----------------------------------------------------------

    def crash(self) -> None:
        """Client crash: the virtual-storage buffer disappears."""
        self._buffer.clear()
        self._by_txn_lsn.clear()
        self._ship_cursor = 0
        self.clock = LsnClock()
