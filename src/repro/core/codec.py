"""A tiny self-describing binary codec for log records and pages.

A production recovery log needs a byte format: the stable log stores
bytes, crash truncation happens at byte granularity, and log addresses
are byte offsets.  This codec is deliberately small — five scalar tags
plus tuples — but it is a real format with framing and round-trip
guarantees, property-tested in ``tests/property/test_codec.py``.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``str``, ``bytes`` and (possibly nested) tuples of supported values.
Lists are accepted on encode and come back as tuples, which suits log
records: decoded records are immutable snapshots of what was written.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple, Union

#: Buffer types the lazy helpers accept.  ``skip_value_at`` never
#: materializes values, so it works directly against a large backing
#: ``bytearray`` (e.g. the stable log) without slicing.
Buffer = Union[bytes, bytearray, memoryview]

_TAG_NONE = b"N"
_TAG_TRUE = b"t"
_TAG_FALSE = b"f"
_TAG_INT = b"I"      # 8-byte big-endian signed
_TAG_BIGINT = b"G"   # length-prefixed big-endian signed (rare, huge ints)
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_TUPLE = b"T"

_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


class CodecError(ValueError):
    """Raised when a value cannot be encoded or a buffer cannot be decoded."""


def encode(value: Any) -> bytes:
    """Encode ``value`` into a self-describing byte string."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Decode a byte string produced by :func:`encode`.

    Raises :class:`CodecError` on truncated or malformed input, or if the
    buffer has trailing bytes.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"trailing bytes after value ({len(data) - offset} left)")
    return value


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out += _TAG_INT
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out += _TAG_BIGINT
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, (tuple, list)):
        out += _TAG_TUPLE
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated buffer: missing tag")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        end = offset + 8
        if end > len(data):
            raise CodecError("truncated int")
        return _I64.unpack_from(data, offset)[0], end
    if tag == _TAG_BIGINT:
        length, offset = _read_length(data, offset)
        end = offset + length
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _TAG_STR:
        length, offset = _read_length(data, offset)
        end = offset + length
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from exc
    if tag == _TAG_BYTES:
        length, offset = _read_length(data, offset)
        end = offset + length
        return data[offset:end], end
    if tag == _TAG_TUPLE:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return tuple(items), offset
    raise CodecError(f"unknown tag {tag!r} at offset {offset - 1}")


# -- lazy access -----------------------------------------------------------
#
# Header peeking (repro.core.log_records.peek_header) wants a handful of
# leading fields out of a frame without paying for the rest.  These two
# helpers make that possible against any buffer type: ``decode_value_at``
# materializes exactly one value, ``skip_value_at`` advances past one
# value touching only tags and length prefixes.

# Integer tag values for single-byte indexing (buf[i] is an int).
ORD_NONE = _TAG_NONE[0]
ORD_TRUE = _TAG_TRUE[0]
ORD_FALSE = _TAG_FALSE[0]
ORD_INT = _TAG_INT[0]
ORD_BIGINT = _TAG_BIGINT[0]
ORD_STR = _TAG_STR[0]
ORD_BYTES = _TAG_BYTES[0]
ORD_TUPLE = _TAG_TUPLE[0]


def decode_value_at(data: Buffer, offset: int) -> Tuple[Any, int]:
    """Decode the single value starting at ``offset``.

    Returns ``(value, next_offset)``; trailing bytes are allowed (they
    belong to sibling values).  Accepts any buffer type; slices are
    copied only for the value being materialized.
    """
    if not isinstance(data, bytes):
        # _decode_from slices for strings/bytes; normalize once so the
        # behaviour (and error text) is identical across buffer types.
        data = bytes(data)
    return _decode_from(data, offset)


def skip_value_at(data: Buffer, offset: int, end: int) -> int:
    """Advance past one encoded value without materializing it.

    ``end`` bounds the value (typically the frame end); reads past it
    raise :class:`CodecError` exactly as a truncated decode would.
    """
    if offset >= end:
        raise CodecError("truncated buffer: missing tag")
    tag = data[offset]
    offset += 1
    if tag in (ORD_NONE, ORD_TRUE, ORD_FALSE):
        return offset
    if tag == ORD_INT:
        if offset + 8 > end:
            raise CodecError("truncated int")
        return offset + 8
    if tag in (ORD_BIGINT, ORD_STR, ORD_BYTES):
        if offset + 4 > end:
            raise CodecError("truncated length prefix")
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        if offset + length > end:
            raise CodecError("length prefix exceeds buffer")
        return offset + length
    if tag == ORD_TUPLE:
        if offset + 4 > end:
            raise CodecError("truncated length prefix")
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        for _ in range(count):
            offset = skip_value_at(data, offset, end)
        return offset
    raise CodecError(f"unknown tag {bytes((tag,))!r} at offset {offset - 1}")


def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
    end = offset + 4
    if end > len(data):
        raise CodecError("truncated length prefix")
    length = _U32.unpack_from(data, offset)[0]
    if offset + 4 + length > len(data):
        raise CodecError("length prefix exceeds buffer")
    return length, end
