"""Two-phase commit for distributed transactions (presumed abort).

The paper assumes distributed transactions exist around ARIES/CSA: the
undo pass spares *in-doubt* (prepared) branches (section 1.1.2), and a
recovering client "would have to reacquire some locks for any in-doubt
transactions" from information the server keeps (section 2.6.1).  This
module supplies the missing piece: a presumed-abort coordinator running
at the server.

Protocol (classic presumed abort):

1. each participating client runs its own local branch transaction;
2. ``commit()``: the coordinator sends PREPARE to every branch; each
   client force-logs a prepare record (with its lock list) and enters
   the in-doubt state;
3. once all branches are prepared, the coordinator force-logs its
   COMMIT decision (a server-local commit record for the global id) —
   the commit point;
4. branches are told to commit; stragglers resolve later by asking
   :meth:`TwoPhaseCoordinator.resolve`, which answers from the decision
   log — and *presumes abort* when no decision record exists.

Crash behaviour: a branch crash before prepare aborts the global
transaction (its work was rolled back by client recovery); after
prepare the branch survives restart in-doubt and resolves on reconnect;
a server crash loses nothing because decisions are forced log records,
recovered by scanning (`recover_decisions`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.client import Client
from repro.core.log_records import CommitRecord, SERVER_ID
from repro.core.lsn import NULL_LSN
from repro.core.server import Server
from repro.core.transaction import Transaction, TxnState
from repro.errors import NodeUnavailableError, TransactionStateError
from repro.net.messages import MsgType


@dataclass
class GlobalTransaction:
    """A distributed transaction: one local branch per participant."""

    global_id: str
    branches: List[Tuple[Client, Transaction]] = field(default_factory=list)
    state: str = "active"      # active -> preparing -> committed/aborted

    def branch_for(self, client: Client) -> Optional[Transaction]:
        for branch_client, txn in self.branches:
            if branch_client is client:
                return txn
        return None


class TwoPhaseCoordinator:
    """Presumed-abort coordinator colocated with the server."""

    _ids = itertools.count(1)

    def __init__(self, server: Server) -> None:
        self.server = server
        self.network = server.network
        #: Volatile decision cache; the truth is in the log.
        self._decisions: Dict[str, str] = {}
        # Participants resolve in-doubt branches by asking the server's
        # node; a fresh coordinator re-registers (last one wins — they
        # all answer from the same stable log).
        server.dispatcher.register(
            "resolve_2pc", lambda sender, global_id: self.resolve(global_id)
        )

    def _call_branch(self, client: Client, method: str, txn: Transaction) -> None:
        """One coordinator->participant exchange for one branch."""
        self.network.stub(self.server.node_id, client.client_id).call(
            method, MsgType.COMMIT_REQUEST,
            payload=txn.txn_id, args=(txn.txn_id,),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_global(self, global_id: Optional[str] = None) -> GlobalTransaction:
        if global_id is None:
            global_id = f"G{next(TwoPhaseCoordinator._ids)}"
        return GlobalTransaction(global_id)

    def enlist(self, gtxn: GlobalTransaction, client: Client) -> Transaction:
        """Start (or return) this participant's local branch."""
        if gtxn.state != "active":
            raise TransactionStateError(
                f"global transaction {gtxn.global_id} is {gtxn.state}"
            )
        existing = gtxn.branch_for(client)
        if existing is not None:
            return existing
        txn = client.begin(f"{gtxn.global_id}@{client.client_id}")
        gtxn.branches.append((client, txn))
        return txn

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def commit(self, gtxn: GlobalTransaction) -> str:
        """Run 2PC; returns "committed" or "aborted".

        Any branch failing to prepare (e.g. its client crashed) aborts
        the whole transaction — presumed abort means no decision record
        is needed for that outcome.
        """
        if gtxn.state != "active":
            raise TransactionStateError(
                f"global transaction {gtxn.global_id} is {gtxn.state}"
            )
        gtxn.state = "preparing"
        faults = self.server.faults
        if faults is not None:
            faults.crashpoint("coordinator.2pc.before_prepare",
                              self.server.tracer)
        prepared: List[Tuple[Client, Transaction]] = []
        for client, txn in gtxn.branches:
            try:
                self._call_branch(client, "prepare_branch", txn)
                prepared.append((client, txn))
            except (NodeUnavailableError, TransactionStateError):
                self._abort_prepared(gtxn, prepared)
                return "aborted"
        if faults is not None:
            faults.crashpoint("coordinator.2pc.before_decision",
                              self.server.tracer)
        self._log_decision(gtxn.global_id)
        gtxn.state = "committed"
        if faults is not None:
            faults.crashpoint("coordinator.2pc.before_commit_fanout",
                              self.server.tracer)
        for client, txn in gtxn.branches:
            try:
                self._call_branch(client, "commit_branch", txn)
            except NodeUnavailableError:
                # The branch resolves via resolve() at reconnect.
                pass
        return "committed"

    def abort(self, gtxn: GlobalTransaction) -> None:
        """Unilateral abort before (or instead of) commit."""
        self._abort_prepared(gtxn, list(gtxn.branches))

    def _abort_prepared(self, gtxn: GlobalTransaction,
                        reached: List[Tuple[Client, Transaction]]) -> None:
        gtxn.state = "aborted"
        for client, txn in gtxn.branches:
            if client.crashed:
                continue  # client recovery rolled it back (or will)
            try:
                self._call_branch(client, "abort_branch", txn)
            except (NodeUnavailableError, TransactionStateError):
                pass

    def _log_decision(self, global_id: str) -> None:
        """The commit point: a forced server-local commit record."""
        record = CommitRecord(
            lsn=self.server.log.clock.next_lsn(NULL_LSN),
            client_id=SERVER_ID,
            txn_id=f"2pc:{global_id}",
            prev_lsn=NULL_LSN,
        )
        addr = self.server.log.append_local(record)
        self.server.log.force(addr)
        self._decisions[global_id] = "committed"

    # ------------------------------------------------------------------
    # Resolution (presumed abort)
    # ------------------------------------------------------------------

    def resolve(self, global_id: str) -> str:
        """The coordinator's answer for an in-doubt participant.

        Consults the volatile cache, then the stable log; with no
        decision record anywhere the answer is "aborted" — the presumed-
        abort rule that makes aborts logging-free.
        """
        cached = self._decisions.get(global_id)
        if cached is not None:
            return cached
        marker = f"2pc:{global_id}"
        for addr, record in self.server.log.scan_backward():
            if isinstance(record, CommitRecord) and record.txn_id == marker:
                self._decisions[global_id] = "committed"
                return "committed"
        return "aborted"

    def recover_decisions(self) -> int:
        """Rebuild the volatile decision cache after a server restart."""
        count = 0
        for addr, record in self.server.log.scan():
            if isinstance(record, CommitRecord) and record.txn_id and \
                    record.txn_id.startswith("2pc:"):
                self._decisions[record.txn_id[4:]] = "committed"
                count += 1
        return count

    def resolve_indoubt_at(self, client: Client) -> List[Tuple[str, str]]:
        """Settle every in-doubt branch at a reconnected client.

        Returns (global_id, outcome) per branch resolved.  Branch ids
        have the form ``<global>@<client>``, as created by enlist().
        """
        outcomes: List[Tuple[str, str]] = []
        ask_coordinator = self.network.stub(client.client_id,
                                            self.server.node_id)
        for txn in list(client.txns):
            if txn.state is not TxnState.PREPARED or "@" not in txn.txn_id:
                continue
            global_id = txn.txn_id.split("@", 1)[0]
            decision = ask_coordinator.call("resolve_2pc",
                                            MsgType.COMMIT_REQUEST,
                                            payload=global_id,
                                            args=(global_id,))
            if decision == "committed":
                client.commit_prepared(txn)
            else:
                txn.state = TxnState.ACTIVE
                client.rollback(txn)
            outcomes.append((global_id, decision))
        return outcomes
