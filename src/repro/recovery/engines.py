"""Pluggable recovery engines: serial, partitioned-parallel, redo-only.

``Server.restart`` (section 2.7) and ``recover_failed_client``
(sections 2.6.1/2.6.2) no longer hard-code the three-pass scan: they
build a :class:`RecoveryContext` describing *what* must be recovered and
hand it to the engine named by ``SystemConfig.recovery_engine``:

* ``serial`` — the paper's analysis/redo/undo passes, byte-identical to
  the historical inline code (same spans, same crashpoints, same scan
  counts, same log bytes).
* ``partitioned`` — fuses analysis and redo-candidate collection into a
  single header-level pass, splits redo into page-id partitions whose
  supplementary pre-checkpoint scans are pruned to the partition's
  minimum DPL RecAddr, and resolves undo chains by exact LSN→address
  lookup (``ServerLogManager.addr_of_lsn``) grouped per loser client
  instead of a full backward scan.  Partitions run as deterministic
  worker units in partition-index order and undo work is applied through
  a canonical merge in descending record-address order — exactly the
  order the serial backward scan visits — so page images *and* the
  emitted CLR/End stream are byte-identical to ``serial``.
* ``redo_only`` — the single-pass design of Sauer & Härder (arXiv
  1409.3682): committed history is replayed forward and loser updates
  are treated as never-redone, skipping both their page application and
  the whole undo scan.  Repeating history stays sound because the
  engine still emits the losers' CLR/End stream into the log (without
  touching pages): a future restart either redoes update+CLR (net
  before-image) or neither.  Applicability gates fall back to the
  serial passes whenever skipping would be unsound: prepared (in-doubt)
  transactions present, a loser update already externalized to the
  page image, pending logical undo, a prior partial rollback, or an
  unresolvable chain.

Engines reach pages only through :class:`RecoveryPageAccess` and emit
log records only through :class:`ClrWriter` (lint rule REC060 enforces
both), so every implementation inherits the server's WAL and
dirty-tracking discipline unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.core.apply import (
    apply_clr_redo,
    apply_redo,
    physical_undo_effect,
    redo_needed,
)
from repro.core.log_records import CompensationRecord, FrameHeader, UpdateRecord
from repro.core.lsn import LogAddr, NULL_LSN
from repro.core.recovery import (
    AnalysisResult,
    ClrWriter,
    LogicalUndoHandler,
    RecoveryPageAccess,
    RedoStats,
    RestartTxn,
    UndoStats,
    _finish_rollback,
    _undo_one,
    analysis_pass,
    redo_pass,
    undo_pass,
)
from repro.core.server_log import ServerLogManager
from repro.errors import RecoveryInvariantError
from repro.faults import FaultPlan

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

#: The selectable engine names, in canonical comparison order.
ENGINE_NAMES = ("serial", "partitioned", "redo_only")


@dataclass
class RecoveryContext:
    """Everything one recovery run needs, independent of the engine.

    The server builds one per ``restart`` / ``recover_failed_client``
    call; hooks carry the between-pass bookkeeping that used to be
    inlined (tracker reinstall after analysis, forwarded-dirty rebuild
    before redo, the restart loser filter).
    """

    log: ServerLogManager
    pages: RecoveryPageAccess
    clr_writer: ClrWriter
    #: ``"server-restart"`` or ``"client-recovery"``.
    kind: str
    #: Crashpoint namespace: ``server.restart`` / ``server.client_recovery``.
    crashpoint_prefix: str
    #: Where the analysis scan starts (``None`` when a supplier below
    #: provides the analysis without scanning — the 2.6.2 GLM variant).
    analysis_scan_start: Optional[LogAddr] = None
    analysis_supplier: Optional[Callable[[], AnalysisResult]] = None
    client_filter: Optional[Set[str]] = None
    rebuild_log_bookkeeping: bool = False
    observer: Optional[Callable] = None
    #: Header-only observer (preferred): sees ``(header, addr)`` per
    #: scanned record without the full decode.
    header_observer: Optional[Callable] = None
    #: Faults armed for the analysis scan specifically (client recovery
    #: historically scans analysis unarmed; restart arms it).
    analysis_faults: Optional[FaultPlan] = None
    logical_undo: Optional[LogicalUndoHandler] = None
    faults: Optional[FaultPlan] = None
    tracer: Optional["Tracer"] = None
    #: The histogram/time-series hub (``repro.obs.hist.MetricsHub``),
    #: threaded from ``Server.metrics``; ``None`` disables the per-pass
    #: record histograms and the restart progress meter.
    metrics: Optional[object] = None
    #: Attributes stamped on every pass span (e.g. ``client=C1``).
    span_attrs: Dict[str, object] = field(default_factory=dict)
    #: Extra attributes for the analysis span only (e.g. ``start_addr``).
    analysis_span_attrs: Dict[str, object] = field(default_factory=dict)
    after_analysis: Optional[Callable[[AnalysisResult], None]] = None
    #: Runs between analysis and redo; returns redos applied out of band
    #: (the forwarded-dirty rebuild of client recovery).
    pre_redo: Optional[Callable[[], int]] = None
    loser_filter: Optional[
        Callable[[Dict[str, RestartTxn]], Dict[str, RestartTxn]]
    ] = None
    partitions: int = 4


@dataclass
class EngineResult:
    """What an engine run produced, for the server's RecoveryReport."""

    engine: str
    analysis: AnalysisResult
    redo: RedoStats
    undo: UndoStats
    forwarded_redos: int = 0
    #: Set when ``redo_only``/``partitioned`` had to run the serial
    #: passes instead (applicability gate failed); names the gate.
    fallback: Optional[str] = None


class RecoveryEngine:
    """Interface: one complete recovery run over a context."""

    name = "abstract"

    def run(self, ctx: RecoveryContext) -> EngineResult:
        raise NotImplementedError


class _ChainLookupMiss(Exception):
    """An undo chain LSN had no known address; fall back to scanning."""


# ---------------------------------------------------------------------------
# Shared pass plumbing (spans + crashpoints in the historical order)
# ---------------------------------------------------------------------------

def _fire_before(ctx: RecoveryContext, pass_name: str) -> None:
    """Arm the per-pass crashpoint with its literal manifest name.

    The CRASHPOINTS manifest is closed-loop against literal call sites,
    so the names are spelled out per (flavor, pass) rather than built
    from ``ctx.crashpoint_prefix``.
    """
    if ctx.faults is None:
        return
    restart = ctx.crashpoint_prefix == "server.restart"
    if pass_name == "analysis":
        if restart:
            ctx.faults.crashpoint("server.restart.before_analysis",
                                  ctx.tracer)
        else:
            ctx.faults.crashpoint("server.client_recovery.before_analysis",
                                  ctx.tracer)
    elif pass_name == "redo":
        if restart:
            ctx.faults.crashpoint("server.restart.before_redo", ctx.tracer)
        else:
            ctx.faults.crashpoint("server.client_recovery.before_redo",
                                  ctx.tracer)
    else:
        if restart:
            ctx.faults.crashpoint("server.restart.before_undo", ctx.tracer)
        else:
            ctx.faults.crashpoint("server.client_recovery.before_undo",
                                  ctx.tracer)


#: Restart progress sampling interval, in scanned records.  Coarse
#: enough to stay cheap, fine enough that the time series resolves the
#: shape of a long scan; the final total is always sampled too.
_PROGRESS_SAMPLE_EVERY = 64


def _progress_observer(ctx: RecoveryContext,
                       inner: Optional[Callable]) -> Callable:
    """Wrap the analysis header observer with the restart progress meter.

    Samples ``restart_progress`` (records scanned so far, on the hub's
    logical clock) every :data:`_PROGRESS_SAMPLE_EVERY` records; the
    scan's log extent is stamped into the series meta so consumers can
    express progress as scanned/extent.  Purely additive: the wrapped
    observer (the transaction tracker during restart) sees exactly the
    calls it would have.
    """
    metrics = ctx.metrics
    assert metrics is not None
    series = metrics.restart_progress  # type: ignore[attr-defined]
    start = ctx.analysis_scan_start or 0
    series.meta["log_extent"] = max(
        0, ctx.log.stable.end_of_log_addr - start)
    scanned = 0

    def observer(first: object, addr: LogAddr) -> None:
        nonlocal scanned
        scanned += 1
        if scanned % _PROGRESS_SAMPLE_EVERY == 0:
            series.sample(metrics.next_tick(),  # type: ignore[attr-defined]
                          scanned)
        if inner is not None:
            inner(first, addr)

    return observer


def _run_analysis(ctx: RecoveryContext,
                  header_sink: Optional[Callable[[LogAddr, FrameHeader], None]]
                  ) -> AnalysisResult:
    if ctx.analysis_supplier is not None:
        return ctx.analysis_supplier()
    assert ctx.analysis_scan_start is not None
    header_observer = ctx.header_observer
    observer = ctx.observer
    if ctx.metrics is not None:
        # analysis_pass prefers the header observer when both hooks are
        # set, so wrap whichever one will actually fire — meter on the
        # cheap header path unless only a full-record observer exists.
        if header_observer is not None or observer is None:
            header_observer = _progress_observer(ctx, header_observer)
        else:
            observer = _progress_observer(ctx, observer)
    return analysis_pass(
        ctx.log, ctx.analysis_scan_start,
        client_filter=ctx.client_filter,
        rebuild_log_bookkeeping=ctx.rebuild_log_bookkeeping,
        observer=observer,
        faults=ctx.analysis_faults,
        header_sink=header_sink,
        header_observer=header_observer,
    )


def _analysis_phase(engine: RecoveryEngine, ctx: RecoveryContext,
                    header_sink: Optional[
                        Callable[[LogAddr, FrameHeader], None]]
                    ) -> AnalysisResult:
    tracer = ctx.tracer
    span = 0
    if tracer is not None:
        attrs: Dict[str, object] = dict(ctx.span_attrs)
        attrs.update(ctx.analysis_span_attrs)
        if engine.name != "serial":
            attrs["engine"] = engine.name
        span = tracer.begin("recovery", "analysis", "server", **attrs)
    _fire_before(ctx, "analysis")
    analysis = _run_analysis(ctx, header_sink)
    if tracer is not None:
        tracer.end(
            span,
            records_scanned=analysis.records_scanned,
            by_client=dict(sorted(analysis.records_by_client.items())),
            dpl_size=len(analysis.dpl),
            redo_addr=analysis.redo_addr,
            end_addr=analysis.end_addr,
        )
    if ctx.metrics is not None:
        ctx.metrics.recovery_pass_records.observe(  # type: ignore[attr-defined]
            analysis.records_scanned)
        # Close the progress meter with the pass total (the in-scan
        # meter samples every _PROGRESS_SAMPLE_EVERY records only).
        ctx.metrics.restart_progress.sample(  # type: ignore[attr-defined]
            ctx.metrics.next_tick(),  # type: ignore[attr-defined]
            analysis.records_scanned)
    if ctx.after_analysis is not None:
        ctx.after_analysis(analysis)
    return analysis


def _redo_phase(engine: RecoveryEngine, ctx: RecoveryContext,
                analysis: AnalysisResult,
                redo_fn: Callable[[], RedoStats]) -> Tuple[RedoStats, int]:
    tracer = ctx.tracer
    forwarded = ctx.pre_redo() if ctx.pre_redo is not None else 0
    span = 0
    if tracer is not None:
        attrs = dict(ctx.span_attrs)
        attrs["redo_addr"] = analysis.redo_addr
        if engine.name != "serial":
            attrs["engine"] = engine.name
        span = tracer.begin("recovery", "redo", "server", **attrs)
    _fire_before(ctx, "redo")
    redo = redo_fn()
    redo.redos_applied += forwarded
    if tracer is not None:
        end_attrs: Dict[str, object] = {
            "records_scanned": redo.records_scanned,
            "records_considered": redo.records_considered,
            "pages_redone": redo.redos_applied,
        }
        if ctx.pre_redo is not None:
            end_attrs["forwarded_redos"] = forwarded
        end_attrs["by_client"] = dict(sorted(redo.applied_by_client.items()))
        tracer.end(span, **end_attrs)
    if ctx.metrics is not None:
        ctx.metrics.recovery_pass_records.observe(  # type: ignore[attr-defined]
            redo.records_scanned)
    return redo, forwarded


def _undo_phase(engine: RecoveryEngine, ctx: RecoveryContext,
                losers: Dict[str, RestartTxn],
                undo_fn: Callable[[], UndoStats]) -> UndoStats:
    tracer = ctx.tracer
    span = 0
    if tracer is not None:
        attrs = dict(ctx.span_attrs)
        attrs["losers"] = len(losers)
        if engine.name != "serial":
            attrs["engine"] = engine.name
        span = tracer.begin("recovery", "undo", "server", **attrs)
    _fire_before(ctx, "undo")
    undo = undo_fn()
    if tracer is not None:
        tracer.end(
            span,
            records_scanned=undo.records_scanned,
            clrs_written=undo.clrs_written,
            txns_rolled_back=undo.txns_rolled_back,
            by_client=dict(sorted(undo.clrs_by_client.items())),
        )
    if ctx.metrics is not None:
        ctx.metrics.recovery_pass_records.observe(  # type: ignore[attr-defined]
            undo.records_scanned)
    return undo


def _select_losers(ctx: RecoveryContext,
                   analysis: AnalysisResult) -> Dict[str, RestartTxn]:
    losers = analysis.losers()
    if ctx.loser_filter is not None:
        losers = ctx.loser_filter(losers)
    return losers


# ---------------------------------------------------------------------------
# Serial: the historical three passes behind the interface
# ---------------------------------------------------------------------------

class SerialRecoveryEngine(RecoveryEngine):
    """The paper's passes, byte-identical to the pre-engine inline code."""

    name = "serial"

    def run(self, ctx: RecoveryContext) -> EngineResult:
        analysis = _analysis_phase(self, ctx, header_sink=None)
        redo, forwarded = _redo_phase(
            self, ctx, analysis,
            lambda: redo_pass(ctx.log, analysis, ctx.pages,
                              client_filter=ctx.client_filter,
                              faults=ctx.faults),
        )
        losers = _select_losers(ctx, analysis)
        undo = _undo_phase(
            self, ctx, losers,
            lambda: undo_pass(ctx.log, losers, ctx.pages, ctx.clr_writer,
                              ctx.logical_undo, faults=ctx.faults),
        )
        return EngineResult(self.name, analysis, redo, undo, forwarded)


# ---------------------------------------------------------------------------
# Candidate collection shared by the fused engines
# ---------------------------------------------------------------------------

class _CandidateCollector:
    """Redo candidates gathered during (or after) the analysis scan.

    A candidate is any redoable record that passes the client filter;
    the DPL RecAddr filter can only run once analysis has finished, so
    it is applied at partition time.
    """

    def __init__(self, client_filter: Optional[Set[str]]) -> None:
        self.client_filter = client_filter
        self.fused: List[Tuple[LogAddr, FrameHeader]] = []
        #: Headers examined by supplementary scans (redo-pass work the
        #: fused analysis scan did NOT already cover).
        self._supplementary_scanned = 0

    def sink(self, addr: LogAddr, header: FrameHeader) -> None:
        if not header.is_redoable() or header.page_id < 0:
            return
        if (self.client_filter is not None
                and header.client_id not in self.client_filter):
            return
        self.fused.append((addr, header))

    def supplementary(self, log: ServerLogManager, from_addr: LogAddr,
                      to_addr: LogAddr) -> List[Tuple[LogAddr, FrameHeader]]:
        out: List[Tuple[LogAddr, FrameHeader]] = []
        for addr, header in log.scan_headers(from_addr, to_addr):
            self._supplementary_scanned += 1
            if not header.is_redoable() or header.page_id < 0:
                continue
            if (self.client_filter is not None
                    and header.client_id not in self.client_filter):
                continue
            out.append((addr, header))
        return out


def _collect_candidates(ctx: RecoveryContext, analysis: AnalysisResult,
                        collector: _CandidateCollector, fused: bool,
                        partitions: int
                        ) -> Tuple[List[List[Tuple[LogAddr, FrameHeader]]],
                                   int]:
    """Partitioned candidate lists (ascending address within each).

    With a fused analysis scan the candidates for ``[start, end)`` are
    already collected; only the pre-checkpoint range
    ``[RecAddr_min, start)`` needs one supplementary scan, starting at
    the global minimum DPL RecAddr below the checkpoint and routed to
    partitions with each partition pruned to its own minimum (a record
    older than every RecAddr of its partition's pages cannot pass the
    DPL filter, so it is dropped without a header materialization in
    the partition worker).  Without a fused scan (analysis came from a
    supplier) the supplementary scan covers the whole redo range.
    """
    parts: List[List[Tuple[LogAddr, FrameHeader]]] = [
        [] for _ in range(partitions)
    ]
    if fused:
        base = ctx.analysis_scan_start
        assert base is not None
        if analysis.redo_addr < base:
            part_start: Dict[int, LogAddr] = {}
            for page_id, rec_addr in analysis.dpl.items():
                if rec_addr >= base:
                    continue
                p = page_id % partitions
                if p not in part_start or rec_addr < part_start[p]:
                    part_start[p] = rec_addr
            for addr, header in collector.supplementary(
                    ctx.log, min(part_start.values()), base):
                p = header.page_id % partitions
                if p in part_start and addr >= part_start[p]:
                    parts[p].append((addr, header))
        for addr, header in collector.fused:
            parts[header.page_id % partitions].append((addr, header))
    else:
        for addr, header in collector.supplementary(
                ctx.log, analysis.redo_addr, analysis.end_addr):
            parts[header.page_id % partitions].append((addr, header))
    return parts, collector._supplementary_scanned


def _apply_candidates(ctx: RecoveryContext, analysis: AnalysisResult,
                      items: List[Tuple[LogAddr, FrameHeader]],
                      stats: RedoStats,
                      skip: Optional[Set[str]] = None) -> None:
    """Apply one partition's candidates in ascending address order.

    Identical filtering to :func:`redo_pass`: DPL membership with
    ``RecAddr <= addr``, then ``page_LSN < LSN``.  ``skip`` names loser
    transactions whose non-NTA updates are treated as never-redone
    (the redo-only engine).
    """
    dpl = analysis.dpl
    for addr, header in items:
        if ctx.faults is not None:
            ctx.faults.crashpoint("recovery.redo.scan")
        rec_addr = dpl.get(header.page_id)
        if rec_addr is None or addr < rec_addr:
            continue
        if (skip is not None and header.txn_id in skip
                and not header.redo_only):
            continue
        stats.records_considered += 1
        page = ctx.pages.fetch(header.page_id)
        if not redo_needed(page, header.lsn):
            continue
        record = ctx.log.read_at(addr)
        if isinstance(record, UpdateRecord):
            apply_redo(page, record)
        else:
            assert isinstance(record, CompensationRecord)
            apply_clr_redo(page, record)
        ctx.pages.mark_dirty(header.page_id, rec_addr)
        stats.redos_applied += 1
        stats.applied_by_client[header.client_id] = (
            stats.applied_by_client.get(header.client_id, 0) + 1
        )


# ---------------------------------------------------------------------------
# Chain-walking undo shared by partitioned and redo-only
# ---------------------------------------------------------------------------

#: One undo-chain position: (addr, header, txn_id).
_ChainItem = Tuple[LogAddr, FrameHeader, str]


def _resolve_chains(ctx: RecoveryContext, losers: Dict[str, RestartTxn]
                    ) -> List[_ChainItem]:
    """Walk every loser's UndoNxtLSN chain via exact address lookups.

    Chains are resolved per loser (the per-client partitioning of undo
    work — each chain is one client's records by construction), then
    the caller merges them in descending address order, which is
    exactly the order the serial backward scan would visit the same
    records.  Raises :class:`_ChainLookupMiss` when an LSN has no known
    address — the caller falls back to the scanning undo pass.
    """
    items: List[_ChainItem] = []
    for txn_id, txn in losers.items():
        lsn = txn.undo_next_lsn
        while lsn != NULL_LSN:
            addr = ctx.log.addr_of_lsn(txn.client_id, lsn)
            if addr is None:
                raise _ChainLookupMiss(f"{txn.client_id}:{lsn}")
            header = ctx.log.header_at(addr)
            if header.txn_id != txn_id:
                raise RecoveryInvariantError(
                    f"undo chain of {txn_id} resolved lsn {lsn} to a record "
                    f"of {header.txn_id}"
                )
            items.append((addr, header, txn_id))
            if header.is_clr():
                lsn = header.undo_next_lsn
            elif header.is_update():
                lsn = header.prev_lsn
            else:
                raise RecoveryInvariantError(
                    f"undo chain of {txn_id} points at non-undoable "
                    f"{header.type_name} (lsn {header.lsn})"
                )
    items.sort(key=lambda item: item[0], reverse=True)
    return items


def _chain_undo(ctx: RecoveryContext, losers: Dict[str, RestartTxn],
                items: List[_ChainItem], apply_pages: bool) -> UndoStats:
    """Undo the merged chain items in descending address order.

    With ``apply_pages`` this produces the byte-identical CLR/End stream
    and page images of the serial undo pass (the partitioned engine);
    without it, CLRs and Ends are emitted but no page is touched and the
    CLR LSN is raised above the never-applied update's LSN so a future
    restart redoes update-then-CLR in order (the redo-only engine).
    """
    stats = UndoStats()
    expected: Dict[str, int] = {}
    last_lsn: Dict[str, int] = {}
    for txn_id, txn in losers.items():
        if txn.undo_next_lsn != NULL_LSN:
            expected[txn_id] = txn.undo_next_lsn
            last_lsn[txn_id] = txn.last_lsn
    for txn_id in list(losers):
        if txn_id not in expected:
            _finish_rollback(ctx.clr_writer, losers[txn_id],
                             losers[txn_id].last_lsn)
            stats.txns_rolled_back += 1
    for addr, header, txn_id in items:
        if ctx.faults is not None:
            ctx.faults.crashpoint("recovery.undo.scan")
        stats.records_scanned += 1
        txn = losers[txn_id]
        if header.is_clr():
            expected[txn_id] = header.undo_next_lsn
        elif header.redo_only:
            expected[txn_id] = header.prev_lsn
        else:
            record = ctx.log.read_at(addr)
            assert isinstance(record, UpdateRecord)
            if apply_pages:
                clr_lsn = _undo_one(record, ctx.pages, ctx.clr_writer, txn,
                                    last_lsn[txn_id], ctx.logical_undo)
            else:
                clr_lsn = _emit_unapplied_clr(ctx, record, txn,
                                              last_lsn[txn_id])
            last_lsn[txn_id] = clr_lsn
            expected[txn_id] = record.prev_lsn
            stats.clrs_written += 1
            stats.clrs_by_client[txn.client_id] = (
                stats.clrs_by_client.get(txn.client_id, 0) + 1
            )
        if expected[txn_id] == NULL_LSN:
            del expected[txn_id]
            _finish_rollback(ctx.clr_writer, txn, last_lsn[txn_id])
            stats.txns_rolled_back += 1
    if expected:
        raise RecoveryInvariantError(
            f"undo could not resolve chains for {sorted(expected)}; "
            "the prefix property was violated"
        )
    return stats


def _emit_unapplied_clr(ctx: RecoveryContext, record: UpdateRecord,
                        txn: RestartTxn, prev_lsn: int) -> int:
    """Log the CLR for a never-redone loser update without applying it.

    The CLR LSN must exceed the (never-applied) update's LSN: a future
    restart that redoes both must order update before CLR, and the
    server clock after a crash has only observed re-appended records —
    possibly none as new as this loser.
    """
    effect = physical_undo_effect(record)
    page = ctx.pages.fetch(effect.page_id)
    clr_lsn = ctx.clr_writer.next_lsn(max(page.page_lsn, record.lsn))
    clr = CompensationRecord(
        lsn=clr_lsn,
        client_id=txn.client_id,
        txn_id=txn.txn_id,
        prev_lsn=prev_lsn,
        undo_next_lsn=record.prev_lsn,
        page_id=effect.page_id,
        op=effect.op,
        slot=effect.slot,
        after=effect.after,
        key=effect.key,
    )
    ctx.clr_writer.append(clr)
    return clr_lsn


# ---------------------------------------------------------------------------
# Partitioned: fused scan + pruned partition scans + chain-walk undo
# ---------------------------------------------------------------------------

class PartitionedRecoveryEngine(RecoveryEngine):
    """Deterministic partition workers; results identical to serial."""

    name = "partitioned"

    def __init__(self, partitions: int = 4) -> None:
        self.partitions = max(1, partitions)

    def run(self, ctx: RecoveryContext) -> EngineResult:
        collector = _CandidateCollector(ctx.client_filter)
        fused = ctx.analysis_supplier is None
        analysis = _analysis_phase(
            self, ctx, header_sink=collector.sink if fused else None)
        fallback: Optional[str] = None

        def _redo() -> RedoStats:
            stats = RedoStats()
            parts, scanned = _collect_candidates(
                ctx, analysis, collector, fused, self.partitions)
            stats.records_scanned = scanned
            tracer = ctx.tracer
            for p, items in enumerate(parts):
                pspan = 0
                if tracer is not None:
                    pspan = tracer.begin(
                        "recovery", "redo-partition", "server",
                        **ctx.span_attrs, engine=self.name, partition=p,
                        candidates=len(items),
                    )
                before = stats.redos_applied
                _apply_candidates(ctx, analysis, items, stats)
                if tracer is not None:
                    tracer.end(pspan,
                               redos_applied=stats.redos_applied - before)
            return stats

        redo, forwarded = _redo_phase(self, ctx, analysis, _redo)
        losers = _select_losers(ctx, analysis)

        def _undo() -> UndoStats:
            nonlocal fallback
            try:
                items = _resolve_chains(ctx, losers)
            except _ChainLookupMiss:
                fallback = "undo-chain-lookup-miss"
                return undo_pass(ctx.log, losers, ctx.pages, ctx.clr_writer,
                                 ctx.logical_undo, faults=ctx.faults)
            return _chain_undo(ctx, losers, items, apply_pages=True)

        undo = _undo_phase(self, ctx, losers, _undo)
        return EngineResult(self.name, analysis, redo, undo, forwarded,
                            fallback=fallback)


# ---------------------------------------------------------------------------
# Redo-only: single forward pass, losers never redone
# ---------------------------------------------------------------------------

class RedoOnlyRecoveryEngine(RecoveryEngine):
    """Sauer & Härder's single-pass restart, gated for applicability."""

    name = "redo_only"

    def run(self, ctx: RecoveryContext) -> EngineResult:
        collector = _CandidateCollector(ctx.client_filter)
        fused = ctx.analysis_supplier is None
        analysis = _analysis_phase(
            self, ctx, header_sink=collector.sink if fused else None)
        losers = _select_losers(ctx, analysis)
        chain_items, reason = self._gate(ctx, analysis, losers)

        if reason is not None:
            # Serial fallback: the standard redo + scanning undo over the
            # analysis already in hand.
            redo, forwarded = _redo_phase(
                self, ctx, analysis,
                lambda: redo_pass(ctx.log, analysis, ctx.pages,
                                  client_filter=ctx.client_filter,
                                  faults=ctx.faults),
            )
            undo = _undo_phase(
                self, ctx, losers,
                lambda: undo_pass(ctx.log, losers, ctx.pages, ctx.clr_writer,
                                  ctx.logical_undo, faults=ctx.faults),
            )
            return EngineResult(self.name, analysis, redo, undo, forwarded,
                                fallback=reason)

        skip = set(losers)

        def _redo() -> RedoStats:
            stats = RedoStats()
            parts, scanned = _collect_candidates(
                ctx, analysis, collector, fused, partitions=1)
            stats.records_scanned = scanned
            _apply_candidates(ctx, analysis, parts[0], stats, skip=skip)
            return stats

        redo, forwarded = _redo_phase(self, ctx, analysis, _redo)
        assert chain_items is not None
        undo = _undo_phase(
            self, ctx, losers,
            lambda: _chain_undo(ctx, losers, chain_items, apply_pages=False),
        )
        return EngineResult(self.name, analysis, redo, undo, forwarded)

    def _gate(self, ctx: RecoveryContext, analysis: AnalysisResult,
              losers: Dict[str, RestartTxn]
              ) -> Tuple[Optional[List[_ChainItem]], Optional[str]]:
        """Check the never-redone treatment is sound; resolve chains.

        Runs strictly before any page is modified, so a failed gate
        falls back to the serial passes with nothing to unwind.
        """
        for txn in analysis.txns.values():
            if txn.state == "prepared":
                return None, "prepared-transactions-present"
        for txn in losers.values():
            # A loser whose newest record is not the next to undo has
            # trailing CLRs or NTA pieces from an interrupted rollback;
            # skipping interacts with already-applied compensation, so
            # leave those histories to the serial passes.
            if (txn.undo_next_lsn != NULL_LSN
                    and txn.undo_next_lsn != txn.last_lsn):
                return None, "loser-has-partial-rollback"
        try:
            items = _resolve_chains(ctx, losers)
        except _ChainLookupMiss:
            return None, "undo-chain-lookup-miss"
        for addr, header, _txn_id in items:
            if header.is_clr():
                return None, "loser-has-partial-rollback"
            if header.redo_only:
                continue
            record = ctx.log.read_at(addr)
            assert isinstance(record, UpdateRecord)
            if record.undo_is_logical() and ctx.logical_undo is not None:
                return None, "logical-undo-required"
            page = ctx.pages.fetch(header.page_id)
            if page.page_lsn >= header.lsn:
                # The update is already in the pre-redo image (shipped
                # and externalized before the crash): it cannot be
                # treated as never-redone.
                return None, "loser-update-externalized"
        return items, None


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

def make_engine(name: str, partitions: int = 4) -> RecoveryEngine:
    """Engine registry keyed by ``SystemConfig.recovery_engine``."""
    if name == "serial":
        return SerialRecoveryEngine()
    if name == "partitioned":
        return PartitionedRecoveryEngine(partitions)
    if name == "redo_only":
        return RedoOnlyRecoveryEngine()
    raise ValueError(
        f"unknown recovery engine {name!r}; expected one of {ENGINE_NAMES}"
    )
