"""Pluggable recovery engines (serial / partitioned / redo_only)."""

from repro.recovery.engines import (
    ENGINE_NAMES,
    EngineResult,
    PartitionedRecoveryEngine,
    RecoveryContext,
    RecoveryEngine,
    RedoOnlyRecoveryEngine,
    SerialRecoveryEngine,
    make_engine,
)

__all__ = [
    "ENGINE_NAMES",
    "EngineResult",
    "PartitionedRecoveryEngine",
    "RecoveryContext",
    "RecoveryEngine",
    "RedoOnlyRecoveryEngine",
    "SerialRecoveryEngine",
    "make_engine",
]
