"""Executable invariants: DESIGN.md section 6 as runtime checks.

``check_all`` audits a live complex for the structural properties the
recovery argument rests on.  The fuzzers call it after every recovery;
tests call it at interesting moments; it is cheap enough to sprinkle.
Each checker returns a list of violation strings (empty = healthy).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.log_records import CompensationRecord
from repro.core.system import ClientServerSystem
from repro.locking.lock_modes import LockMode


def check_wal(system: ClientServerSystem) -> List[str]:
    """No page version on disk may contain an update whose log record is
    not stable (invariant 3: write-ahead logging)."""
    violations = []
    log = system.server.log
    stable_max: Dict[int, int] = {}
    for addr, record in log.scan(0, log.flushed_addr):
        if record.is_redoable() and record.page_id >= 0:
            stable_max[record.page_id] = max(
                stable_max.get(record.page_id, 0), record.lsn
            )
    for page_id in system.server.disk.page_ids():
        disk_lsn = system.server.disk.stored_lsn(page_id)
        if disk_lsn is None or disk_lsn == 0:
            continue
        bound = stable_max.get(page_id, 0)
        if disk_lsn > bound:
            violations.append(
                f"WAL: disk page {page_id} at LSN {disk_lsn} exceeds the "
                f"stable log's max LSN {bound} for it"
            )
    return violations


def check_per_page_log_order(system: ClientServerSystem) -> List[str]:
    """Within the log, each page's records must appear in increasing LSN
    order (address order == application order per page) — what the redo
    pass's repeat-history discipline needs (invariant 4)."""
    violations = []
    last_lsn: Dict[int, int] = {}
    for addr, record in system.server.log.scan():
        if not record.is_redoable() or record.page_id < 0:
            continue
        previous = last_lsn.get(record.page_id)
        if previous is not None and record.lsn <= previous:
            violations.append(
                f"log order: page {record.page_id} has LSN {record.lsn} at "
                f"addr {addr} after LSN {previous}"
            )
        last_lsn[record.page_id] = record.lsn
    return violations


def check_clr_chains(system: ClientServerSystem) -> List[str]:
    """Every CLR's UndoNxtLSN must point strictly below the record it
    compensates (bounded rollback logging, invariant 5)."""
    violations = []
    for addr, record in system.server.log.scan():
        if isinstance(record, CompensationRecord):
            if record.undo_next_lsn >= record.lsn:
                violations.append(
                    f"CLR at addr {addr} (lsn {record.lsn}) has "
                    f"UndoNxtLSN {record.undo_next_lsn} not below itself"
                )
    return violations


def check_cache_coherence(system: ClientServerSystem) -> List[str]:
    """A client's *clean* cached copy under an S token must match the
    server's authoritative version (invariant: S tokens guarantee
    freshness), and dirty copies must be at least as new."""
    violations = []
    for client_id, client in system.clients.items():
        if client.crashed:
            continue
        for page_id in client.pool.page_ids():
            bcb = client.pool.bcb(page_id)
            mode = client._p_locks.get(page_id)
            if mode is None:
                continue
            server_page = system.server.authoritative_page(page_id)
            if bcb.dirty or mode is LockMode.X:
                if bcb.page.page_lsn < server_page.page_lsn:
                    violations.append(
                        f"coherence: {client_id} holds {mode} on page "
                        f"{page_id} at LSN {bcb.page.page_lsn} but the server "
                        f"is newer ({server_page.page_lsn})"
                    )
            else:
                if bcb.page.page_lsn != server_page.page_lsn:
                    violations.append(
                        f"coherence: {client_id}'s clean S-token copy of page "
                        f"{page_id} (LSN {bcb.page.page_lsn}) diverges from "
                        f"the server's (LSN {server_page.page_lsn})"
                    )
    return violations


def check_privilege_exclusivity(system: ClientServerSystem) -> List[str]:
    """At most one X holder per page, and X excludes S holders."""
    violations = []
    glm = system.server.glm
    pages = set()
    for entry in glm.physical.entries():
        __, page_id = entry.resource  # type: ignore[misc]
        pages.add(page_id)
    for page_id in pages:
        holders = glm.p_lock_holders(page_id)
        x_holders = [o for o, m in holders.items() if m is LockMode.X]
        s_holders = [o for o, m in holders.items() if m is LockMode.S]
        if len(x_holders) > 1:
            violations.append(
                f"privilege: page {page_id} has multiple X holders {x_holders}"
            )
        if x_holders and s_holders:
            violations.append(
                f"privilege: page {page_id} has X holder {x_holders} beside "
                f"S holders {s_holders}"
            )
    return violations


def check_client_buffer_discipline(system: ClientServerSystem) -> List[str]:
    """A client must still hold every log record not yet stable at the
    server (the discard rule of section 2.1, invariant 8)."""
    violations = []
    flushed = system.server.log.flushed_addr
    for client_id, client in system.clients.items():
        if client.crashed:
            continue
        held = {record.lsn for record in client.log.buffered_records()}
        # Every shipped-but-unstable record must still be in the buffer.
        for addr, record in system.server.log.scan(flushed):
            if record.client_id == client_id and record.lsn not in held:
                violations.append(
                    f"discard rule: {client_id}'s record lsn {record.lsn} at "
                    f"unstable addr {addr} is no longer buffered"
                )
    return violations


ALL_CHECKS = (
    check_wal,
    check_per_page_log_order,
    check_clr_chains,
    check_cache_coherence,
    check_privilege_exclusivity,
    check_client_buffer_discipline,
)


def check_all(system: ClientServerSystem) -> List[str]:
    """Run every invariant check; returns all violations."""
    violations: List[str] = []
    for check in ALL_CHECKS:
        violations.extend(check(system))
    return violations


def assert_invariants(system: ClientServerSystem) -> None:
    """Assert-style wrapper for tests and fuzzers."""
    violations = check_all(system)
    if violations:
        details = "\n  ".join(violations)
        raise AssertionError(f"invariants violated:\n  {details}")
