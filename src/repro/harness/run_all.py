"""Run the whole experiment suite and print every table.

Usage::

    python -m repro.harness.run_all             # all experiments
    python -m repro.harness.run_all E1 E4 F1    # a subset

The same tables (at the same default parameters) are what EXPERIMENTS.md
records and what ``pytest benchmarks/ --benchmark-only`` asserts.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

from repro.harness import experiments as X
from repro.harness.report import format_table

#: Experiment id -> (title, runner).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], List[dict]]]] = {
    "E1": ("commit traffic vs write-set size (sec 4.1, 5)",
           X.run_e1_commit_traffic),
    "E2": ("inter-transaction cache retention (sec 4.1)",
           X.run_e2_cache_retention),
    "E3": ("rollback work placement (sec 4.1, 5)",
           X.run_e3_rollback_locality),
    "E4": ("Commit_LSN benefit vs Max_LSN sync period (sec 3)",
           X.run_e4_commit_lsn),
    "E4b": ("global vs per-table Commit_LSN (sec 3)",
            X.run_e4_per_table),
    "E5": ("failed-client recovery vs checkpointing (sec 2.6)",
           X.run_e5_client_recovery),
    "E6": ("client DPLs in the server checkpoint (sec 2.7)",
           X.run_e6_server_checkpoint),
    "E7": ("page reallocation across clients (sec 2.3)",
           X.run_e7_page_realloc),
    "E8": ("steal/no-force vs force policies (sec 1.1.1, 2.1)",
           X.run_e8_buffer_policies),
    "E9": ("in-operation page recovery cost (sec 2.5)",
           X.run_e9_page_recovery),
    "E10": ("local vs server-round-trip LSN assignment (sec 2.2)",
            X.run_e10_lsn_assignment),
    "E11": ("client-to-client page forwarding (sec 4.1)",
            X.run_e11_forwarding),
    "E12": ("LLM lock caching (sec 2.1)",
            X.run_e12_lock_caching),
    "E13": ("log-replay transport (sec 5 future work)",
            X.run_e13_log_replay),
    "F1": ("the Figure 1 architecture trace",
           X.run_f1_architecture_trace),
}


def main(argv: List[str]) -> int:
    wanted = [arg.upper().replace("E4B", "E4b") for arg in argv] or \
        list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in wanted:
        title, runner = EXPERIMENTS[name]
        print(f"\n{'=' * 72}\n{name} — {title}\n{'=' * 72}")
        print(format_table(runner()))
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
