"""Plain-text tables for the experiment harness.

The benchmarks print the same row/series shapes the paper's claims are
about; this module renders them readably in CI logs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = [_fmt(row.get(col, "")) for col in columns]
        rendered.append(cells)
        for col, cell in zip(columns, cells):
            widths[col] = max(widths[col], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for cells in rendered:
        lines.append(" | ".join(
            cell.ljust(widths[col]) for col, cell in zip(columns, cells)
        ))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, Any]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    print()
    print(format_table(rows, columns, title))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ratio(a: float, b: float) -> float:
    """a/b with a defined answer for b == 0."""
    return a / b if b else float("inf") if a else 1.0
