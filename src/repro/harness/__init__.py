"""Experiment harness: metrics, oracle, scheduler, experiments, reports."""

from repro.harness.metrics import MetricsSnapshot, measure, snapshot
from repro.harness.oracle import (
    CommittedStateOracle,
    DurabilityViolation,
    verify_durability,
)
from repro.harness.report import format_table, print_table, ratio
from repro.harness.scheduler import (
    ScheduleResult,
    Scheduler,
    TxnOutcomeKind,
)

__all__ = [
    "CommittedStateOracle",
    "DurabilityViolation",
    "MetricsSnapshot",
    "ScheduleResult",
    "Scheduler",
    "TxnOutcomeKind",
    "format_table",
    "measure",
    "print_table",
    "ratio",
    "snapshot",
    "verify_durability",
]
