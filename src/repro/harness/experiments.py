"""The experiment suite — every claim of the paper, made measurable.

ARIES/CSA has no quantitative evaluation section; DESIGN.md's experiment
index maps each qualitative claim (sections 2.3, 2.6, 2.7, 3, 4) to one
function here.  Each function builds fresh complexes, runs the workload,
and returns table rows; the ``benchmarks/`` targets wrap them for
pytest-benchmark and print the tables EXPERIMENTS.md records.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import (
    LsnAssignment,
    SystemConfig,
)
from repro.core.system import ClientServerSystem
from repro.errors import RecordNotFoundError
from repro.harness import metrics
from repro.index.btree import BTree
from repro.records.heap import RecordId
from repro.workloads.generator import (
    WorkloadSpec,
    cad_session_programs,
    debit_credit_programs,
    generate_programs,
    run_program_sequential,
    seed_table,
)

Row = Dict[str, Any]


def _named_configs() -> List[SystemConfig]:
    return [
        SystemConfig.aries_csa(),
        SystemConfig.esm_cs(),
        SystemConfig.objectstore(),
    ]


def _fresh(config: SystemConfig, clients: Sequence[str],
           table_pages: int, records_per_page: int,
           seed_client: Optional[str] = None
           ) -> Tuple[ClientServerSystem, List[RecordId]]:
    system = ClientServerSystem(config, client_ids=clients)
    system.bootstrap(data_pages=table_pages, free_pages=16)
    rids = seed_table(system, seed_client or clients[0], "t", table_pages,
                      records_per_page)
    return system, rids


# ---------------------------------------------------------------------------
# E1 — commit-time traffic vs write-set size (sections 4.1, 5(2))
# ---------------------------------------------------------------------------

def run_e1_commit_traffic(write_set_sizes: Sequence[int] = (1, 4, 16),
                          num_txns: int = 10,
                          table_pages: int = 24) -> List[Row]:
    """ARIES/CSA ships only log records at commit; ESM-CS ships every
    modified page; ObjectStore also writes them to disk.  A group-commit
    variant (PR 3) additionally batches commit forces, which the
    ``forces_saved``/``group_forces`` columns surface."""
    rows: List[Row] = []
    configs = _named_configs() + [
        SystemConfig.aries_csa(group_commit_window=4,
                               label="ARIES/CSA (group commit)"),
    ]
    for config in configs:
        for write_set in write_set_sizes:
            system, rids = _fresh(config, ["C1"], table_pages, 2)
            programs = debit_credit_programs(num_txns, rids, write_set)

            def work() -> None:
                for program in programs:
                    run_program_sequential(system, "C1", program)

            delta = metrics.measure(system, work)
            rows.append({
                "system": config.label,
                "write_set": write_set,
                "messages_per_commit": delta.messages / num_txns,
                "pages_shipped_at_commit": delta.pages_shipped_at_commit,
                "disk_writes": delta.disk_writes,
                "bytes_per_commit": delta.message_bytes // num_txns,
                "log_forces": delta.log_forces,
                "forces_saved": delta.forces_saved,
                "group_forces": delta.group_forces,
            })
    return rows


# ---------------------------------------------------------------------------
# E2 — inter-transaction cache retention (section 4.1)
# ---------------------------------------------------------------------------

def run_e2_cache_retention(num_txns: int = 12, working_pages: int = 8,
                           revisits: int = 3) -> List[Row]:
    """Purge-at-commit destroys the client cache between transactions."""
    rows: List[Row] = []
    for config in (SystemConfig.aries_csa(), SystemConfig.esm_cs()):
        system, rids = _fresh(config, ["C1"], working_pages, 4)
        working_set = rids
        programs = cad_session_programs(num_txns, working_set, revisits)
        # Warm the cache outside the measured window.
        run_program_sequential(system, "C1", programs[0])

        def work() -> None:
            for program in programs[1:]:
                run_program_sequential(system, "C1", program)

        delta = metrics.measure(system, work)
        rows.append({
            "system": config.label,
            "cache_hit_rate": delta.client_cache_hit_rate,
            "page_refetches": delta.page_requests,
            "messages": delta.messages,
        })
    return rows


# ---------------------------------------------------------------------------
# E3 — where rollback work happens (sections 4.1, 5(3))
# ---------------------------------------------------------------------------

def run_e3_rollback_locality(abort_rates: Sequence[float] = (0.1, 0.3, 0.5),
                             num_txns: int = 40) -> List[Row]:
    """ARIES/CSA rolls back at the client; ESM-CS loads the server."""
    rows: List[Row] = []
    for config in (SystemConfig.aries_csa(), SystemConfig.esm_cs()):
        for abort_rate in abort_rates:
            system, rids = _fresh(config, ["C1"], 16, 4)
            spec = WorkloadSpec(
                num_txns=num_txns, ops_per_txn=6, read_fraction=0.2,
                abort_fraction=abort_rate, seed=3,
            )
            programs = generate_programs(spec, rids)

            def work() -> None:
                for program in programs:
                    run_program_sequential(system, "C1", program)

            metrics.measure(system, work)
            client = system.client("C1")
            rows.append({
                "system": config.label,
                "abort_rate": abort_rate,
                "aborts": client.aborts,
                "server_undo_records": system.server.serverside_undo_records,
                "client_undo_records": client.clrs_written_locally,
            })
    return rows


# ---------------------------------------------------------------------------
# E4 — Commit_LSN benefit vs Max_LSN sync period (section 3)
# ---------------------------------------------------------------------------

def run_e4_commit_lsn(sync_periods: Sequence[int] = (1, 4, 16, 64),
                      include_disabled: bool = True,
                      num_read_txns: int = 30) -> List[Row]:
    """A read-mostly client next to an update-heavy one: the Lamport
    piggyback keeps LSN streams close, keeping Commit_LSN fresh and read
    locks skippable."""
    rows: List[Row] = []
    variants: List[Tuple[str, SystemConfig]] = []
    if include_disabled:
        variants.append(("disabled",
                         SystemConfig(commit_lsn_enabled=False, seed=5)))
    for period in sync_periods:
        variants.append((
            f"period={period}",
            SystemConfig(max_lsn_sync_period=period, seed=5),
        ))
    for label, config in variants:
        system, rids = _fresh(config, ["W", "R"], 16, 4)
        writer, reader = system.client("W"), system.client("R")
        rng = random.Random(config.seed)
        # Interleave: one short committed write txn, then one read txn.
        for i in range(num_read_txns):
            txn = writer.begin()
            writer.update(txn, rids[rng.randrange(len(rids))], ("w", i))
            writer.commit(txn)
            read_txn = reader.begin()
            for _ in range(6):
                reader.read(read_txn, rids[rng.randrange(len(rids))])
            reader.commit(read_txn)
        total_reads = num_read_txns * 6
        rows.append({
            "variant": label,
            "reads": total_reads,
            "locks_avoided": reader.locks_avoided_by_commit_lsn,
            "avoided_fraction": reader.locks_avoided_by_commit_lsn / total_reads,
            "final_commit_lsn": system.server.current_commit_lsn(),
        })
    return rows


def run_e4_per_table(num_read_txns: int = 30) -> List[Row]:
    """Section 3's per-file refinement: a long update transaction on one
    table pins the *global* Commit_LSN in the past, but per-table values
    keep lock avoidance alive on the other tables."""
    rows: List[Row] = []
    for label, per_table in (("global Commit_LSN", False),
                             ("per-table Commit_LSN", True)):
        config = SystemConfig(max_lsn_sync_period=1,
                              commit_lsn_per_table=per_table, seed=21)
        system = ClientServerSystem(config, client_ids=["W", "R"])
        system.bootstrap(data_pages=16, free_pages=8)
        hot = seed_table(system, "W", "hot", 8, 4)
        cold = seed_table(system, "W", "cold", 8, 4)
        writer, reader = system.client("W"), system.client("R")
        # One long transaction on the hot table starts early and never
        # ends: its first_lsn pins the GLOBAL Commit_LSN in the past.
        long_txn = writer.begin()
        writer.update(long_txn, hot[0], "pins-commit-lsn")
        writer._ship_log_records()
        rng = random.Random(config.seed)
        # Committed updates then freshen every cold page: their page_LSNs
        # now exceed the pinned global Commit_LSN, so only the per-table
        # value can still prove them committed.
        for rid in cold:
            txn = writer.begin()
            writer.update(txn, rid, ("fresh", rid.slot))
            writer.commit(txn)
        for i in range(num_read_txns):
            read_txn = reader.begin()
            for _ in range(6):
                reader.read(read_txn, cold[rng.randrange(len(cold))])
            reader.commit(read_txn)
        total_reads = num_read_txns * 6
        rows.append({
            "variant": label,
            "cold_table_reads": total_reads,
            "locks_avoided": reader.locks_avoided_by_commit_lsn,
            "avoided_fraction": reader.locks_avoided_by_commit_lsn / total_reads,
        })
        writer.rollback(long_txn)
    return rows


# ---------------------------------------------------------------------------
# E5 — failed-client recovery vs checkpointing (sections 2.6.1 / 2.6.2)
# ---------------------------------------------------------------------------

def run_e5_client_recovery(ckpt_intervals: Sequence[int] = (4, 16, 64),
                           committed_before_crash: int = 64) -> List[Row]:
    """Client checkpoints bound the log the server must process when the
    client fails; the GLM-lock-table variant degrades as its RecAddr
    ages."""
    rows: List[Row] = []
    # A small client pool forces periodic page shipping (steal), so dirty
    # sets stay small and fresh checkpoints actually bound recovery;
    # without that, every page stays dirty-at-client since the beginning
    # and no bookkeeping scheme can avoid redoing its whole history.
    frames = 4
    variants: List[Tuple[str, SystemConfig]] = [
        (f"client-ckpt every {interval}",
         SystemConfig(client_checkpoint_interval=interval,
                      server_checkpoint_interval=0,
                      client_buffer_frames=frames, seed=9))
        for interval in ckpt_intervals
    ]
    variants.append((
        "no ckpts (GLM RecAddr, sec 2.6.2)",
        SystemConfig.no_client_checkpoints(server_checkpoint_interval=0,
                                           client_buffer_frames=frames,
                                           seed=9),
    ))
    for label, config in variants:
        system, rids = _fresh(config, ["C1"], 8, 4)
        client = system.client("C1")
        rng = random.Random(config.seed)
        for i in range(committed_before_crash):
            txn = client.begin()
            client.update(txn, rids[rng.randrange(len(rids))], ("x", i))
            client.commit(txn)
        # Crash mid-transaction with shipped-but-uncommitted work.
        txn = client.begin()
        client.update(txn, rids[0], "doomed")
        client._ship_log_records()
        report = system.crash_client("C1")
        assert report is not None
        rows.append({
            "variant": label,
            "log_records_processed": report.total_log_records_processed,
            "analysis_records": report.analysis_records,
            "redos_applied": report.redos_applied,
            "clrs_written": report.clrs_written,
        })
        system.reconnect_client("C1")
    return rows


# ---------------------------------------------------------------------------
# E6 — client DPLs in the server checkpoint (section 2.7)
# ---------------------------------------------------------------------------

def run_e6_server_checkpoint(trials: int = 1) -> List[Row]:
    """The paper's adversarial window: a page dirty at a client before
    the server's checkpoint, shipped to the server after it, server
    crash before any disk write.  Without client DPLs in the server
    checkpoint the committed update is silently lost."""
    rows: List[Row] = []
    for label, unsafe in (("ARIES/CSA (client DPLs merged)", False),
                          ("strawman (server DPL only)", True)):
        lost = 0
        redos = 0
        for trial in range(trials):
            config = SystemConfig(
                server_checkpoint_interval=0, client_checkpoint_interval=0,
                unsafe_server_checkpoint_excludes_clients=unsafe,
            )
            system, rids = _fresh(config, ["C1"], 4, 2)
            client = system.client("C1")
            rid = rids[0]
            txn = client.begin()
            client.update(txn, rid, "committed-before-ckpt")
            client.commit(txn)  # no-force: the page stays dirty at C1
            system.server.take_checkpoint()
            client._ship_page(rid.page_id)  # arrives after the checkpoint
            system.crash_all()
            report = system.restart_all()
            redos += report.redos_applied
            try:
                recovered = system.server_visible_value(rid)
            except RecordNotFoundError:
                recovered = None  # the whole insert was lost too
            if recovered != "committed-before-ckpt":
                lost += 1
        rows.append({
            "variant": label,
            "trials": trials,
            "committed_updates_lost": lost,
            "redos_applied": redos,
        })
    return rows


# ---------------------------------------------------------------------------
# E7 — page reallocation across clients (section 2.3)
# ---------------------------------------------------------------------------

def run_e7_page_realloc(churn_keys: int = 96) -> List[Row]:
    """B+-tree churn: one client empties pages (deallocation), another
    refills (reallocation).  The SMP-derived format LSNs must keep every
    page's LSN monotonic with zero reads of dead pages."""
    config = SystemConfig(page_size=1024, server_checkpoint_interval=0)
    system = ClientServerSystem(config, client_ids=["C1", "C2"])
    system.bootstrap(data_pages=2, free_pages=256)
    c1, c2 = system.client("C1"), system.client("C2")

    txn = c1.begin()
    tree = BTree.create(c1, txn)
    c1.commit(txn)

    last_lsn_seen: Dict[int, int] = {}
    violations = 0

    def observe_pages(client) -> None:
        nonlocal violations
        for page_id in list(client.pool.page_ids()):
            page = client.pool.peek(page_id)
            if page is None:
                continue
            previous = last_lsn_seen.get(page_id)
            if previous is not None and page.page_lsn < previous:
                violations += 1
            last_lsn_seen[page_id] = max(previous or 0, page.page_lsn)

    reads_before = system.server.disk.reads

    txn = c1.begin()
    for key in range(churn_keys):
        tree.insert(txn, key, f"v{key}")
    c1.commit(txn)
    observe_pages(c1)

    txn = c1.begin()
    for key in range(churn_keys):
        tree.delete(txn, key)
    c1.commit(txn)
    deallocated = tree.page_deallocations
    observe_pages(c1)

    tree2 = BTree.attach(c2, tree.anchor_page_id)
    txn = c2.begin()
    for key in range(churn_keys, 2 * churn_keys):
        tree2.insert(txn, key, f"v{key}")
    c2.commit(txn)
    observe_pages(c2)
    tree2.check_invariants()

    # Recovery must also hold after all this churn.
    system.crash_all()
    system.restart_all()
    tree3 = BTree.attach(c1, tree.anchor_page_id)
    survived = sum(1 for _ in tree3.items())

    return [{
        "churn_keys": churn_keys,
        "splits": tree.splits + tree2.splits,
        "pages_deallocated": deallocated,
        "lsn_monotonicity_violations": violations,
        "disk_reads_total": system.server.disk.reads - reads_before,
        "keys_after_crash_recovery": survived,
    }]


# ---------------------------------------------------------------------------
# E8 — buffer management policies (sections 1.1.1, 2.1)
# ---------------------------------------------------------------------------

def run_e8_buffer_policies(buffer_frames: Sequence[int] = (8, 32),
                           num_txns: int = 40) -> List[Row]:
    """Steal/no-force vs force-to-disk commit: disk writes and commit
    work under an update-heavy workload."""
    rows: List[Row] = []
    for config_base in (SystemConfig.aries_csa(), SystemConfig.objectstore()):
        for frames in buffer_frames:
            config = config_base.with_overrides(client_buffer_frames=frames)
            system, rids = _fresh(config, ["C1"], 16, 4)
            spec = WorkloadSpec(num_txns=num_txns, ops_per_txn=6,
                                read_fraction=0.25, seed=13)
            programs = generate_programs(spec, rids)

            def work() -> None:
                for program in programs:
                    run_program_sequential(system, "C1", program)

            delta = metrics.measure(system, work)
            rows.append({
                "system": config.label,
                "client_frames": frames,
                "disk_writes": delta.disk_writes,
                "pages_shipped": delta.page_ships,
                "log_forces": delta.log_forces,
                "messages": delta.messages,
            })
    return rows


# ---------------------------------------------------------------------------
# E9 — in-operation page recovery cost (section 2.5)
# ---------------------------------------------------------------------------

def run_e9_page_recovery(updates_since_clean: Sequence[int] = (2, 8, 32),
                         background_updates: int = 50) -> List[Row]:
    """Page recovery applies the log from RecAddr, not from the start:
    cost scales with updates since the page was last clean at the server."""
    rows: List[Row] = []
    for k in updates_since_clean:
        config = SystemConfig(server_checkpoint_interval=0, seed=17)
        system, rids = _fresh(config, ["C1"], 8, 4)
        client = system.client("C1")
        target = rids[0]
        other = [rid for rid in rids if rid.page_id != target.page_id]
        rng = random.Random(config.seed)
        # Background traffic dilutes the log so scan selectivity matters.
        for i in range(background_updates):
            txn = client.begin()
            client.update(txn, other[rng.randrange(len(other))], ("bg", i))
            client.commit(txn)
        # Bring the target page current at the server, then on disk.
        txn = client.begin()
        client.update(txn, target, "base")
        client.commit(txn)
        client._ship_page(target.page_id)
        system.server.flush_page(target.page_id)
        # k more committed updates, shipped to the server's buffer only.
        for i in range(k):
            txn = client.begin()
            client.update(txn, target, ("fresh", i))
            client.commit(txn)
        client._ship_page(target.page_id)
        # Process failure corrupts the server's buffered copy.
        bcb = system.server.pool.bcb(target.page_id)
        assert bcb is not None
        bcb.page.corrupt()
        page, applied = system.server.recover_corrupted_page(target.page_id)
        assert system.server_visible_value(target) == ("fresh", k - 1)
        rows.append({
            "updates_since_disk_version": k,
            "records_applied": applied,
            "log_records_total": system.server.log.stable.record_count(),
        })
    return rows


# ---------------------------------------------------------------------------
# E10 — local vs server-round-trip LSN assignment (section 2.2)
# ---------------------------------------------------------------------------

def run_e10_lsn_assignment(num_txns: int = 20, ops_per_txn: int = 8) -> List[Row]:
    """Section 2.2: 'one cannot afford to wait for a log record to be
    sent to the server ... before the page_LSN field is set'."""
    rows: List[Row] = []
    for label, assignment in (("local (ARIES/CSA)", LsnAssignment.LOCAL),
                              ("server round trip", LsnAssignment.SERVER_ROUND_TRIP)):
        config = SystemConfig(lsn_assignment=assignment)
        system, rids = _fresh(config, ["C1"], 8, 4)
        spec = WorkloadSpec(num_txns=num_txns, ops_per_txn=ops_per_txn,
                            read_fraction=0.0, seed=19)
        programs = generate_programs(spec, rids)

        def work() -> None:
            for program in programs:
                run_program_sequential(system, "C1", program)

        delta = metrics.measure(system, work)
        rows.append({
            "variant": label,
            "lsn_round_trips": delta.lsn_requests,
            "messages_per_update": delta.messages / (num_txns * ops_per_txn),
            "messages": delta.messages,
        })
    return rows


# ---------------------------------------------------------------------------
# E11 — client-to-client page forwarding (section 4.1 discussion)
# ---------------------------------------------------------------------------

def run_e11_forwarding(handoffs: int = 24, pages: int = 8) -> List[Row]:
    """Two clients alternately updating a shared working set: with
    forwarding, dirty pages travel directly between them after the log
    records are acknowledged, cutting the server's inbound page bytes."""
    rows: List[Row] = []
    for label, enabled in (("via server (baseline)", False),
                           ("forwarding (sec 4.1)", True)):
        config = SystemConfig(enable_forwarding=enabled,
                              server_checkpoint_interval=0,
                              client_checkpoint_interval=0, seed=31)
        system = ClientServerSystem(config, client_ids=["A", "B"])
        system.bootstrap(data_pages=pages, free_pages=8)
        rids = seed_table(system, "A", "t", pages, 2)
        a, b = system.client("A"), system.client("B")
        rng = random.Random(config.seed)
        before = metrics.snapshot(system)
        for i in range(handoffs):
            client = a if i % 2 == 0 else b
            txn = client.begin()
            client.update(txn, rids[rng.randrange(len(rids))], ("h", i))
            client.commit(txn)
        delta = metrics.snapshot(system).minus(before)
        # Correctness: everything still recovers after a total crash.
        system.crash_all()
        system.restart_all()
        rows.append({
            "variant": label,
            "handoffs": handoffs,
            "forwards": system.server.forwards,
            "page_ships": delta.page_ships,
            "messages": delta.messages,
            "bytes": delta.message_bytes,
        })
    return rows


# ---------------------------------------------------------------------------
# E12 — LLM lock caching (section 2.1's message-saving optimization)
# ---------------------------------------------------------------------------

def run_e12_lock_caching(num_txns: int = 30) -> List[Row]:
    """Locks acquired in LLM names and retained across transactions turn
    repeat acquisitions into zero-message local grants."""
    rows: List[Row] = []
    for label, caching in (("no caching", False), ("LLM lock caching", True)):
        config = SystemConfig(llm_cache_locks=caching,
                              commit_lsn_enabled=False, seed=41)
        system = ClientServerSystem(config, client_ids=["C1"])
        system.bootstrap(data_pages=8, free_pages=8)
        rids = seed_table(system, "C1", "t", 8, 4)
        client = system.client("C1")
        rng = random.Random(config.seed)
        before = metrics.snapshot(system)
        for i in range(num_txns):
            txn = client.begin()
            for _ in range(4):
                client.read(txn, rids[rng.randrange(len(rids))])
            client.commit(txn)
        delta = metrics.snapshot(system).minus(before)
        rows.append({
            "variant": label,
            "lock_requests_to_server": delta.lock_requests,
            "local_only_grants": delta.llm_local_grants,
            "messages": delta.messages,
        })
    return rows


# ---------------------------------------------------------------------------
# E13 — log-replay transport (the section 5 future-work mode)
# ---------------------------------------------------------------------------

def run_e13_log_replay(num_txns: int = 30, record_bytes: int = 16,
                       page_size: int = 4096) -> List[Row]:
    """Ship records, not pages: small updates on big pages make the
    image transport pay page-size bytes per steal/transfer, while the
    log-replay transport pays only the records (at the cost of server
    replay CPU, counted here as records replayed)."""
    from repro.config import PageTransport
    rows: List[Row] = []
    for label, transport in (("page images", PageTransport.PAGE_IMAGE),
                             ("log replay (sec 5)", PageTransport.LOG_REPLAY)):
        config = SystemConfig(
            page_transport=transport, page_size=page_size,
            client_buffer_frames=4,        # force steals
            client_checkpoint_interval=0, server_checkpoint_interval=0,
            seed=51,
        )
        system = ClientServerSystem(config, client_ids=["C1"])
        system.bootstrap(data_pages=12, free_pages=8)
        rids = seed_table(system, "C1", "t", 12, 2,
                          value_of=lambda i: "x" * record_bytes)
        client = system.client("C1")
        rng = random.Random(config.seed)
        before = metrics.snapshot(system)
        for i in range(num_txns):
            txn = client.begin()
            client.update(txn, rids[rng.randrange(len(rids))],
                          "y" * record_bytes)
            client.commit(txn)
        delta = metrics.snapshot(system).minus(before)
        # Crash-verify the transport before reporting it.
        system.crash_all()
        system.restart_all()
        rows.append({
            "variant": label,
            "bytes_to_server": delta.message_bytes,
            "page_image_ships": delta.page_ships,
            "records_replayed_at_server":
                system.server.records_replayed_for_materialize,
            "messages": delta.messages,
        })
    return rows


# ---------------------------------------------------------------------------
# F1 — the Figure 1 architecture trace
# ---------------------------------------------------------------------------

def run_f1_architecture_trace() -> List[Row]:
    """One transaction's life, as message-type counts: the flows Figure 1
    draws (page requests/ships down, log ships up, single log at the
    server)."""
    system, rids = _fresh(SystemConfig(), ["SEEDER", "C1"], 4, 2,
                          seed_client="SEEDER")
    system.network.reset_stats()
    client = system.client("C1")
    txn = client.begin()
    value = client.read(txn, rids[0])
    client.update(txn, rids[0], ("figure-1", value))
    client.commit(txn)
    stats = system.network.stats
    return [
        {"flow": msg_type.value, "messages": count}
        for msg_type, count in sorted(stats.by_type.items(),
                                      key=lambda kv: kv[0].value)
        if count
    ]
