"""Cooperative scheduler: concurrent transactions without threads.

Transactions are *programs* (operation lists, see ``repro.workloads``)
assigned to clients.  The scheduler round-robins one operation at a time
across all runnable transactions, which interleaves them exactly the way
the paper's concurrency discussion assumes: record locks serialize
conflicting accesses, the update privilege serializes physical page
modification, and everything else overlaps.

Lock conflicts park the requester and feed the waits-for graph; when
nothing can run, deadlock detection picks the cheapest victim (fewest
logged updates), rolls it back at its client, and the rest proceed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.system import ClientServerSystem
from repro.core.transaction import Transaction
from repro.errors import LockConflictError
from repro.locking.deadlock import WaitsForGraph
from repro.workloads.generator import Op, Program


class TxnOutcomeKind(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"
    DEADLOCK_VICTIM = "deadlock-victim"


@dataclass
class ScheduledTxn:
    name: str
    client_id: str
    program: Program
    txn: Optional[Transaction] = None
    next_op: int = 0
    waiting: bool = False
    outcome: Optional[TxnOutcomeKind] = None


@dataclass
class ScheduleResult:
    committed: int = 0
    aborted: int = 0
    deadlock_victims: int = 0
    rounds: int = 0
    outcomes: Dict[str, TxnOutcomeKind] = field(default_factory=dict)


class Scheduler:
    """Round-robin cooperative executor with deadlock resolution."""

    def __init__(self, system: ClientServerSystem) -> None:
        self.system = system
        self.graph = WaitsForGraph()

    def run(self, assignments: Sequence[Tuple[str, Program]],
            max_rounds: int = 100_000) -> ScheduleResult:
        """Execute all programs; returns aggregate outcomes.

        ``assignments`` pairs a client id with each program.  Programs at
        the same client interleave with each other and with other
        clients' programs.
        """
        txns = [
            ScheduledTxn(name=f"S{i}", client_id=client_id, program=program)
            for i, (client_id, program) in enumerate(assignments)
        ]
        result = ScheduleResult()
        while any(t.outcome is None for t in txns):
            result.rounds += 1
            if result.rounds > max_rounds:
                raise RuntimeError("scheduler exceeded max rounds")
            progressed = False
            for scheduled in txns:
                if scheduled.outcome is not None:
                    continue
                if self._step(scheduled):
                    progressed = True
            if not progressed:
                self._break_deadlock(txns, result)
        for scheduled in txns:
            assert scheduled.outcome is not None
            result.outcomes[scheduled.name] = scheduled.outcome
            if scheduled.outcome is TxnOutcomeKind.COMMITTED:
                result.committed += 1
            elif scheduled.outcome is TxnOutcomeKind.ABORTED:
                result.aborted += 1
            else:
                result.deadlock_victims += 1
        return result

    # -- single step ----------------------------------------------------------

    def _step(self, scheduled: ScheduledTxn) -> bool:
        """Attempt one operation; returns True on progress."""
        client = self.system.client(scheduled.client_id)
        if scheduled.txn is None:
            scheduled.txn = client.begin()
        op = scheduled.program[scheduled.next_op]
        try:
            self._execute(client, scheduled, op)
        except LockConflictError as conflict:
            self._note_wait(scheduled, conflict)
            return False
        self.graph.clear_waiter(self._node_name(scheduled))
        scheduled.waiting = False
        scheduled.next_op += 1
        return True

    def _execute(self, client, scheduled: ScheduledTxn, op: Op) -> None:
        txn = scheduled.txn
        kind = op[0]
        if kind == "read":
            client.read(txn, op[1])
        elif kind == "update":
            client.update(txn, op[1], op[2])
        elif kind == "insert":
            client.insert(txn, op[1], op[2])
        elif kind == "delete":
            client.delete(txn, op[1])
        elif kind == "savepoint":
            client.savepoint(txn, op[1])
        elif kind == "rollback_to":
            client.rollback(txn, savepoint=op[1])
        elif kind == "commit":
            client.commit(txn)
            scheduled.outcome = TxnOutcomeKind.COMMITTED
        elif kind == "abort":
            client.rollback(txn)
            scheduled.outcome = TxnOutcomeKind.ABORTED
        else:
            raise ValueError(f"unknown op {op!r}")

    # -- waits-for bookkeeping ----------------------------------------------------

    def _node_name(self, scheduled: ScheduledTxn) -> str:
        assert scheduled.txn is not None
        return scheduled.txn.txn_id

    def _note_wait(self, scheduled: ScheduledTxn,
                   conflict: LockConflictError) -> None:
        """Translate a conflict's holders into waits-for edges.

        Local conflicts name transaction ids directly.  Global conflicts
        name client LLMs; the edge targets are the transactions at those
        clients currently holding the resource locally.
        """
        scheduled.waiting = True
        waiter = self._node_name(scheduled)
        targets: List[str] = []
        for holder in conflict.holders:
            if holder in self.system.clients:
                peer = self.system.clients[holder]
                local_holders = peer.llm.local.holders(conflict.resource)
                targets.extend(local_holders)
                if not local_holders:
                    # Cached-but-idle global lock that could not be
                    # relinquished this instant; treat the client itself
                    # as the blocker so detection still terminates.
                    targets.append(holder)
            else:
                targets.append(holder)
        self.graph.add_wait(waiter, targets)

    def _break_deadlock(self, txns: List[ScheduledTxn],
                        result: ScheduleResult) -> None:
        cycle = self.graph.find_cycle()
        if cycle is None:
            raise RuntimeError(
                "no transaction can progress but no cycle found — "
                "a lock is held by a node outside the schedule"
            )
        by_txn_id = {
            self._node_name(t): t for t in txns
            if t.txn is not None and t.outcome is None
        }

        def cost(name: str) -> int:
            scheduled = by_txn_id.get(name)
            if scheduled is None or scheduled.txn is None:
                return 1 << 30  # never pick nodes we cannot abort
            return scheduled.txn.updates_logged

        victim_name = self.graph.choose_victim(cycle, cost)
        victim = by_txn_id.get(victim_name)
        if victim is None:
            raise RuntimeError(f"deadlock victim {victim_name} is not schedulable")
        client = self.system.client(victim.client_id)
        assert victim.txn is not None
        client.rollback(victim.txn)
        victim.outcome = TxnOutcomeKind.DEADLOCK_VICTIM
        self.graph.remove_node(victim_name)
