"""Cooperative scheduler: concurrent transactions without threads.

Transactions are *programs* (operation lists, see ``repro.workloads``)
assigned to clients.  Two executors share one program format, one lock
conflict translation, and one deadlock-victim policy:

* :class:`PollingScheduler` — the original round-robin executor: one
  operation per runnable transaction per round, parked waiters retried
  every round.  Kept as the baseline the engine benchmarks against and
  as the reference semantics for parity tests.
* :class:`Scheduler` — the classic public API, now a thin adapter over
  the event-driven :class:`repro.engine.Engine`: a ready queue and a
  wait set replace the per-round rescan, and lock releases wake exactly
  the parked waiters.  Outcomes are identical; under contention the
  engine simply skips the polling retries.

Lock conflicts park the requester and feed the waits-for graph; when
nothing can run, deadlock detection picks the cheapest victim (fewest
logged updates, ties broken by transaction id — see
:func:`repro.engine.core.choose_deadlock_victim`), rolls it back at its
client, and the rest proceed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.system import ClientServerSystem
from repro.engine.core import (
    Engine,
    ScheduledTxn,
    ScheduleResult,
    TxnOutcomeKind,
    choose_deadlock_victim,
    execute_op,
    victim_cost,
)
from repro.errors import LockConflictError
from repro.locking.deadlock import WaitsForGraph
from repro.workloads.generator import Op, Program

__all__ = [
    "PollingScheduler",
    "ScheduledTxn",
    "ScheduleResult",
    "Scheduler",
    "TxnOutcomeKind",
]


class PollingScheduler:
    """Round-robin cooperative executor with deadlock resolution.

    The legacy execution model: every round visits every unfinished
    transaction and attempts one operation, including transactions
    already known to be blocked (their retry is what eventually
    observes the lock release).  O(all transactions) per round.
    """

    def __init__(self, system: ClientServerSystem) -> None:
        self.system = system
        self.graph = WaitsForGraph()

    def run(self, assignments: Sequence[Tuple[str, Program]],
            max_rounds: int = 100_000) -> ScheduleResult:
        """Execute all programs; returns aggregate outcomes.

        ``assignments`` pairs a client id with each program.  Programs at
        the same client interleave with each other and with other
        clients' programs.
        """
        txns = [
            ScheduledTxn(name=f"S{i}", client_id=client_id, program=program)
            for i, (client_id, program) in enumerate(assignments)
        ]
        result = ScheduleResult()
        while any(t.outcome is None for t in txns):
            result.rounds += 1
            if result.rounds > max_rounds:
                raise RuntimeError("scheduler exceeded max rounds")
            progressed = False
            for scheduled in txns:
                if scheduled.outcome is not None:
                    continue
                if self._step(scheduled):
                    progressed = True
            if not progressed:
                self._break_deadlock(txns, result)
        for scheduled in txns:
            assert scheduled.outcome is not None
            result.outcomes[scheduled.name] = scheduled.outcome
            if scheduled.outcome is TxnOutcomeKind.COMMITTED:
                result.committed += 1
            elif scheduled.outcome is TxnOutcomeKind.ABORTED:
                result.aborted += 1
            else:
                result.deadlock_victims += 1
        return result

    # -- single step ----------------------------------------------------------

    def _step(self, scheduled: ScheduledTxn) -> bool:
        """Attempt one operation; returns True on progress."""
        client = self.system.client(scheduled.client_id)
        if scheduled.txn is None:
            scheduled.txn = client.begin()
        scheduled.steps += 1
        op = scheduled.program[scheduled.next_op]
        try:
            self._execute(client, scheduled, op)
        except LockConflictError as conflict:
            self._note_wait(scheduled, conflict)
            return False
        self.graph.clear_waiter(self._node_name(scheduled))
        scheduled.waiting = False
        scheduled.next_op += 1
        return True

    def _execute(self, client, scheduled: ScheduledTxn, op: Op) -> None:
        execute_op(client, scheduled, op)

    # -- waits-for bookkeeping ----------------------------------------------------

    def _node_name(self, scheduled: ScheduledTxn) -> str:
        assert scheduled.txn is not None
        return scheduled.txn.txn_id

    def _note_wait(self, scheduled: ScheduledTxn,
                   conflict: LockConflictError) -> None:
        """Translate a conflict's holders into waits-for edges.

        Local conflicts name transaction ids directly.  Global conflicts
        name client LLMs; the edge targets are the transactions at those
        clients currently holding the resource locally.
        """
        scheduled.waiting = True
        waiter = self._node_name(scheduled)
        targets: List[str] = []
        for holder in conflict.holders:
            if holder in self.system.clients:
                peer = self.system.clients[holder]
                local_holders = peer.llm.local.holders(conflict.resource)
                targets.extend(local_holders)
                if not local_holders:
                    # Cached-but-idle global lock that could not be
                    # relinquished this instant; treat the client itself
                    # as the blocker so detection still terminates.
                    targets.append(holder)
            else:
                targets.append(holder)
        self.graph.add_wait(waiter, targets)

    def _break_deadlock(self, txns: List[ScheduledTxn],
                        result: ScheduleResult) -> None:
        cycle = self.graph.find_cycle()
        if cycle is None:
            raise RuntimeError(
                "no transaction can progress but no cycle found — "
                "a lock is held by a node outside the schedule"
            )
        by_txn_id = {
            self._node_name(t): t for t in txns
            if t.txn is not None and t.outcome is None
        }
        victim_name = choose_deadlock_victim(
            self.graph, cycle, victim_cost(by_txn_id))
        victim = by_txn_id.get(victim_name)
        if victim is None:
            raise RuntimeError(f"deadlock victim {victim_name} is not schedulable")
        client = self.system.client(victim.client_id)
        assert victim.txn is not None
        client.rollback(victim.txn)
        victim.outcome = TxnOutcomeKind.DEADLOCK_VICTIM
        self.graph.remove_node(victim_name)


class Scheduler(PollingScheduler):
    """The classic scheduler API, executed by the event-driven engine.

    Construction and the step-level helpers (``_step``,
    ``_break_deadlock``, ``graph``) remain the polling implementation —
    harness code that drives single steps by hand keeps working — but
    :meth:`run` hands the whole schedule to
    :class:`repro.engine.Engine`, so experiments and baselines get the
    ready-queue/wait-set execution path without any call-site change.
    """

    def run(self, assignments: Sequence[Tuple[str, Program]],
            max_rounds: int = 100_000) -> ScheduleResult:
        return Engine(self.system).run(assignments, max_rounds=max_rounds)
