"""The durability oracle: what the database *must* contain.

Tests and the crash-fuzz harness track every acknowledged commit here;
after any crash/recovery sequence, :func:`verify_durability` checks the
two halves of the correctness contract:

1. every committed transaction's final values are present;
2. no uncommitted (rolled-back or in-flight-at-crash) value survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.core.system import ClientServerSystem
from repro.errors import RecordNotFoundError
from repro.records.heap import RecordId


@dataclass
class DurabilityViolation:
    rid: RecordId
    expected: Any
    actual: Any
    reason: str

    def __str__(self) -> str:
        return (f"{self.reason} at {self.rid}: expected {self.expected!r}, "
                f"found {self.actual!r}")


_MISSING = object()


class CommittedStateOracle:
    """Mirror of the committed logical database state."""

    def __init__(self) -> None:
        self._committed: Dict[RecordId, Any] = {}
        #: Values written by transactions that must not survive.
        self._forbidden: Dict[RecordId, Set[Any]] = {}

    # -- bookkeeping -------------------------------------------------------

    def note_committed_update(self, rid: RecordId, value: Any) -> None:
        self._committed[rid] = value
        self._forbidden.get(rid, set()).discard(_freeze(value))

    def note_committed_insert(self, rid: RecordId, value: Any) -> None:
        self._committed[rid] = value

    def note_committed_delete(self, rid: RecordId) -> None:
        self._committed[rid] = _MISSING

    def note_uncommitted_value(self, rid: RecordId, value: Any) -> None:
        """A value written by a transaction that did/will not commit."""
        if self._committed.get(rid) == value:
            return  # same value also committed by someone else
        self._forbidden.setdefault(rid, set()).add(_freeze(value))

    def expected(self, rid: RecordId) -> Any:
        return self._committed.get(rid, _MISSING)

    def tracked_rids(self) -> List[RecordId]:
        return sorted(set(self._committed) | set(self._forbidden))

    # -- verification ---------------------------------------------------------

    def verify(self, system: ClientServerSystem,
               where: str = "server") -> List[DurabilityViolation]:
        """Check the system against the oracle; returns violations.

        ``where`` selects the vantage point: "server" (authoritative
        buffer-over-disk state, the right view after full-complex
        recovery) or "current" (including client caches, the right view
        during normal operation).
        """
        violations: List[DurabilityViolation] = []
        reader = (system.server_visible_value if where == "server"
                  else system.current_value)
        for rid in self.tracked_rids():
            try:
                actual = reader(rid)
            except RecordNotFoundError:
                actual = _MISSING
            expected = self._committed.get(rid, _MISSING)
            if rid in self._committed and actual != expected and \
                    not (actual is _MISSING and expected is _MISSING):
                violations.append(DurabilityViolation(
                    rid, expected, actual, "lost or wrong committed value"
                ))
                continue
            if actual is not _MISSING and \
                    _freeze(actual) in self._forbidden.get(rid, set()):
                violations.append(DurabilityViolation(
                    rid, expected, actual, "uncommitted value survived"
                ))
        return violations


def _freeze(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def verify_durability(oracle: CommittedStateOracle,
                      system: ClientServerSystem,
                      where: str = "server") -> None:
    """Assert-style wrapper: raises AssertionError listing violations."""
    violations = oracle.verify(system, where)
    if violations:
        details = "\n  ".join(str(v) for v in violations)
        raise AssertionError(f"durability violated:\n  {details}")
