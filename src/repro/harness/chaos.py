"""Exhaustive crash-point exploration over the fault plane.

ARIES/CSA's recovery argument (sections 2.5-2.7) is quantified over
*arbitrary* failure points.  The :class:`CrashScheduleExplorer` makes
that claim testable: it runs one deterministic scripted workload that
reaches every instrumented crashpoint family (commit, rollback, 2PC,
allocation, checkpoints, client crash recovery, backup, media recovery,
whole-complex restart), takes a **census** of crashpoint hits, then
enumerates **crash schedules** — crash at each censused point, plus
nested schedules that crash again *while recovering from the first
crash* (the restart-is-restartable claim) — and replays the workload
under each.  After every scheduled crash the harness performs real
recovery and checks:

* the durability oracle (committed present, uncommitted absent);
* transaction atomicity for the transactions in flight at the crash
  (all of a transaction's writes survive, or none do — with in-doubt
  2PC branches settled by presumed abort first);
* every runtime invariant (``repro.harness.invariants``);
* that the recovered complex still processes a fresh commit.

Determinism contract: a run is fully determined by ``(seed, schedule)``
— the schedule id string encodes both — so any schedule replays
byte-identically (pinned by each result's ``digest``).  The fault plan
is attached only *after* offline bootstrap/seeding: the sweep models
crashes of a formatted, operating complex (bootstrap is the offline
formatting step; its crashpoint is exercised by dedicated tests).

CLI (the CI chaos-smoke job runs ``--quick`` twice: once plain, once
``--engine`` to drive the script's transactions through the
event-driven execution engine instead of the direct client API)::

    python -m repro.harness.chaos --quick
    python -m repro.harness.chaos --quick --engine
    python -m repro.harness.chaos --seed 7 --out chaos-report.json
    python -m repro.harness.chaos --replay "s7:recovery.undo.scan@1+recovery.undo.scan@1"
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.coordinator import TwoPhaseCoordinator
from repro.core.system import ClientServerSystem
from repro.engine import Engine
from repro.errors import ReproError
from repro.faults import CRASHPOINTS, CrashPointReached, FaultPlan
from repro.harness.invariants import check_all
from repro.harness.oracle import CommittedStateOracle
from repro.obs.flight import FlightRecorder
from repro.records.heap import RecordId
from repro.sanitizer import SanitizerViolation
from repro.storage.page import PageKind
from repro.workloads.generator import seed_table

Schedule = Tuple[Tuple[str, int], ...]

#: Crashpoints that fire inside a recovery pass; each gets a nested
#: schedule (crash during the recovery from the first crash).  Failover
#: promotion is a recovery pass: a crash mid-promotion is retried and
#: must complete on the retry (the promotion-is-restartable claim).
RECOVERY_POINT_PREFIXES = ("server.restart.", "server.client_recovery.",
                           "recovery.", "replication.promote.")


def is_recovery_point(point: str) -> bool:
    return point.startswith(RECOVERY_POINT_PREFIXES)


def schedule_id(seed: int, schedule: Schedule) -> str:
    """Canonical replayable id: ``s<seed>:<point>@<hit>[+...]``."""
    if not schedule:
        return f"s{seed}:census"
    legs = "+".join(f"{point}@{hit}" for point, hit in schedule)
    return f"s{seed}:{legs}"


def parse_schedule_id(sid: str) -> Tuple[int, Schedule]:
    """Inverse of :func:`schedule_id`; raises ``ValueError`` on junk."""
    head, sep, body = sid.partition(":")
    if not sep or not head.startswith("s"):
        raise ValueError(f"malformed schedule id {sid!r}")
    seed = int(head[1:])
    if body == "census":
        return seed, ()
    legs: List[Tuple[str, int]] = []
    for leg in body.split("+"):
        point, sep, hit = leg.partition("@")
        if not sep or point not in CRASHPOINTS:
            raise ValueError(f"unknown crashpoint in schedule id: {leg!r}")
        legs.append((point, int(hit)))
    return seed, tuple(legs)


# ---------------------------------------------------------------------------
# One scripted run
# ---------------------------------------------------------------------------

@dataclass
class _LiveTxn:
    """A transaction in flight: its write set, for crash classification."""

    label: str
    writes: Dict[RecordId, Any] = field(default_factory=dict)


@dataclass
class ScheduleResult:
    """Outcome of one workload run under one crash schedule."""

    schedule_id: str
    schedule: Schedule
    #: (point, leg) of every scheduled crash that actually fired.
    fired: List[Tuple[str, int]]
    #: Whether the script ran to its end (no scheduled crash mid-script).
    script_completed: bool
    #: Whether every leg of the schedule fired.
    exhausted: bool
    #: Post-crash classification of in-flight transactions.
    outcomes: Dict[str, str]
    #: Oracle + invariant + atomicity + probe violations (empty = pass).
    violations: List[str]
    #: Crashpoint census of this run (distinct points -> hits).
    hit_counts: Dict[str, int]
    #: sha256 over the canonical run outcome; replays must match.
    digest: str
    #: sha256 over only the *user-visible* outcome (outcomes, violations,
    #: final values) — the slice that must be identical across recovery
    #: engines, which legitimately differ in crashpoint hit counts.
    durability_digest: str = ""
    #: Flight-recorder dumps captured during the run (crashpoints,
    #: sanitizer violations, durability violations); empty unless the
    #: explorer armed the recorder.  Not part of the digests above — the
    #: recorder is an observer, never an input.
    flight_dumps: List[Dict[str, Any]] = field(
        default_factory=list, compare=False, repr=False)
    #: sha256 over the canonical JSON of ``flight_dumps``; replays of
    #: the same schedule id must match byte for byte.
    flight_sha: str = ""

    def to_dict(self) -> Dict[str, Any]:
        base = {
            "schedule_id": self.schedule_id,
            "schedule": [list(leg) for leg in self.schedule],
            "fired": [list(leg) for leg in self.fired],
            "script_completed": self.script_completed,
            "exhausted": self.exhausted,
            "outcomes": dict(sorted(self.outcomes.items())),
            "violations": list(self.violations),
            "digest": self.digest,
            "durability_digest": self.durability_digest,
        }
        if self.flight_sha:
            base["flight_sha"] = self.flight_sha
        return base


class _WorkloadRun:
    """One execution of the chaos script under one fault plan."""

    def __init__(self, seed: int, schedule: Schedule,
                 engine: bool = False, sanitizer: bool = False,
                 recovery_engine: str = "serial",
                 flight: bool = False,
                 replication: bool = False) -> None:
        self.seed = seed
        self.schedule = schedule
        #: Replication tier: run the same script against a complex with
        #: a warm standby attached, append a primary fail-stop +
        #: failover coda, and record fencing violations.  The script's
        #: transactions and oracle bookkeeping are untouched, so for
        #: schedules both sweeps share the durability digests must be
        #: byte-identical to the single-node sweep — failover is
        #: durably transparent.
        self.replication = replication
        self.replication_violations: List[str] = []
        #: Route the script's plain commit/rollback transactions through
        #: the event-driven engine instead of the direct client API, so
        #: the sweep also certifies the engine's execution path against
        #: every crash schedule.  The specialised steps (2PC, page
        #: allocation, explicit page shipping) stay on the direct API:
        #: the engine's op vocabulary deliberately excludes them.
        self.engine = engine
        self.plan = FaultPlan(seed=seed, schedule=schedule)
        self.oracle = CommittedStateOracle()
        self.live: Dict[str, _LiveTxn] = {}
        self.outcomes: Dict[str, str] = {}
        # Small pools force steals and evictions; manual checkpoints
        # keep the script in charge of every seam it exercises.
        # ``sanitizer`` arms the runtime latch/lock-order sanitizer for
        # the whole run; a violation is a BaseException and fails the
        # schedule loudly rather than becoming a recorded violation.
        config = SystemConfig(
            client_buffer_frames=6,
            server_buffer_frames=6,
            client_checkpoint_interval=0,
            server_checkpoint_interval=0,
            max_lsn_sync_period=4,
            sanitizer=sanitizer,
            recovery_engine=recovery_engine,
            replication_enabled=replication,
            # Small apply interval so the standby's apply loop (and its
            # crashpoint) actually runs during the scripted workload.
            standby_apply_interval=4 if replication else 64,
        )
        self.system = ClientServerSystem(config, client_ids=("C1", "C2"))
        self.system.bootstrap(data_pages=6, free_pages=8)
        self.rids = seed_table(self.system, "C1", "t", 6, 3)
        for index, rid in enumerate(self.rids):
            self.oracle.note_committed_insert(rid, ("init", index))
        # Attach AFTER formatting/seeding: the sweep starts from an
        # operating complex (bootstrap is the offline formatting step).
        # The flight recorder (which brings a tracer with it) goes first
        # so attach_faults can point the plan at that tracer.
        if flight:
            self.system.attach_flight(FlightRecorder())
        self.system.attach_faults(self.plan)

    # -- script helpers (oracle updated only on acknowledged outcomes) ----

    def _run_program(self, client_id: str, label: str,
                     writes: Dict[RecordId, Any], terminal: str) -> None:
        """Execute one transaction through the event-driven engine.

        The write set is registered in ``self.live`` *before* the run:
        a scheduled crash can fire after any prefix of the updates, and
        atomicity classification only needs the full intended set (all
        present => committed, none => rolled back).  CrashPointReached
        propagates straight out of the engine — it only absorbs lock
        conflicts — so the explorer's crash handling is unchanged.
        """
        live = self.live[label] = _LiveTxn(label)
        live.writes.update(writes)
        program = [("update", rid, value) for rid, value in writes.items()]
        program.append((terminal,))
        Engine(self.system).run([(client_id, program)])

    def _commit(self, client_id: str, label: str,
                writes: Dict[RecordId, Any]) -> None:
        if self.engine:
            self._run_program(client_id, label, writes, "commit")
        else:
            client = self.system.client(client_id)
            txn = client.begin(label)
            live = self.live[label] = _LiveTxn(label)
            for rid, value in writes.items():
                client.update(txn, rid, value)
                live.writes[rid] = value
            client.commit(txn)
        for rid, value in self.live[label].writes.items():
            self.oracle.note_committed_update(rid, value)
        self.outcomes[label] = "committed"
        del self.live[label]

    def _rollback(self, client_id: str, label: str,
                  writes: Dict[RecordId, Any]) -> None:
        if self.engine:
            self._run_program(client_id, label, writes, "abort")
        else:
            client = self.system.client(client_id)
            txn = client.begin(label)
            live = self.live[label] = _LiveTxn(label)
            for rid, value in writes.items():
                client.update(txn, rid, value)
                live.writes[rid] = value
            client.rollback(txn)
        for rid, value in self.live[label].writes.items():
            self.oracle.note_uncommitted_value(rid, value)
        self.outcomes[label] = "rolled-back"
        del self.live[label]

    def _abandon(self, label: str) -> None:
        """A transaction the script deliberately strands in a crash: it
        can never commit on any continuation, so its values are
        forbidden regardless of where a scheduled crash lands."""
        live = self.live.pop(label)
        for rid, value in live.writes.items():
            self.oracle.note_uncommitted_value(rid, value)
        self.outcomes[label] = "rolled-back"

    def _two_phase(self, label: str, tag: Any) -> None:
        system = self.system
        c1, c2 = system.client("C1"), system.client("C2")
        coordinator = TwoPhaseCoordinator(system.server)
        gtxn = coordinator.begin_global(f"G-{label}")
        branch1 = coordinator.enlist(gtxn, c1)
        branch2 = coordinator.enlist(gtxn, c2)
        live = self.live[label] = _LiveTxn(label)
        c1.update(branch1, self.rids[6], tag)
        live.writes[self.rids[6]] = tag
        c2.update(branch2, self.rids[12], tag)
        live.writes[self.rids[12]] = tag
        outcome = coordinator.commit(gtxn)
        note = (self.oracle.note_committed_update if outcome == "committed"
                else self.oracle.note_uncommitted_value)
        for rid, value in live.writes.items():
            note(rid, value)
        self.outcomes[label] = outcome
        del self.live[label]

    # -- the script -------------------------------------------------------

    def run_script(self) -> None:
        """The deterministic chaos workload.

        Every instrumented crashpoint family is reached at least once;
        the census (``plan.hit_counts()``) is the proof.  Values are
        unique per step so post-crash classification is unambiguous.
        """
        system = self.system
        server = system.server
        c1, c2 = system.client("C1"), system.client("C2")
        rids = self.rids

        # 1. Plain committed transaction (commit + log append/force).
        self._commit("C1", "t1", {rids[0]: ("w", 1), rids[1]: ("w", 2)})
        # 2. Explicit rollback (CLR path).
        self._rollback("C2", "t2", {rids[3]: ("w", 3)})
        # 3. Wide transaction across every table page: client steals
        #    mid-transaction (evict/push) with only 6 client frames.
        self._commit("C1", "t3",
                     {rids[i]: ("w", 10 + i) for i in range(0, 18, 3)})
        # 4. Client checkpoint (client + server checkpoint seams).
        c1.take_checkpoint()
        # 5. Page allocation: the SMP-update/format seam of section 2.3.
        txn = c2.begin("t4")
        live = self.live["t4"] = _LiveTxn("t4")
        page = c2.allocate_page(txn, PageKind.DATA)
        rid = c2.insert(txn, page.page_id, ("w", 30))
        live.writes[rid] = ("w", 30)
        c2.commit(txn)
        self.oracle.note_committed_insert(rid, ("w", 30))
        self.outcomes["t4"] = "committed"
        del self.live["t4"]
        # 6. Distributed transaction through presumed-abort 2PC.
        self._two_phase("g1", ("w", 40))
        # 7. Coordinated server checkpoint (flush + master-record seam).
        server.take_checkpoint()
        # 8. Client crash with an in-flight transaction: the server
        #    recovers the client (section 2.6.1), then it reconnects.
        txn = c2.begin("t5")
        live = self.live["t5"] = _LiveTxn("t5")
        c2.update(txn, rids[10], ("w", 50))
        live.writes[rids[10]] = ("w", 50)
        # Push the dirty page and WAL-force it to disk: the in-flight
        # update is now stable, so every later recovery (including
        # recovery-of-recovery schedules) has real undo work.
        c2._ship_page(rids[10].page_id)
        server.flush_all()
        self._abandon("t5")           # stranded: can never commit
        system.crash_client("C2")
        system.reconnect_client("C2")
        # 9. Wide uncommitted transaction: client steals push dirty
        #    pages into the small server pool (dirty server evictions =
        #    WAL-guarded write-backs), flush_all drains the rest, then
        #    the transaction rolls back.
        txn = c2.begin("w1")
        live = self.live["w1"] = _LiveTxn("w1")
        for i in range(1, 18, 3):
            c2.update(txn, rids[i], ("w", 100 + i))
            live.writes[rids[i]] = ("w", 100 + i)
        # Push the freshest dirty page explicitly: its records are
        # appended but unforced, so the flush below must WAL-force.
        c2._ship_page(rids[16].page_id)
        server.flush_all()
        c2.rollback(txn)
        for rid, value in live.writes.items():
            self.oracle.note_uncommitted_value(rid, value)
        self.outcomes["w1"] = "rolled-back"
        del self.live["w1"]
        # 10. Fuzzy backup, then media recovery of a table page.
        server.take_backup()
        server.media_recover_page(rids[0].page_id)
        # 11. Post-media-recovery committed work.
        self._commit("C2", "t6", {rids[4]: ("w", 60)})
        # 12. Whole-complex crash with undo work in flight, then the
        #     scripted restart (analysis/redo/undo + lock rebuild).
        txn = c1.begin("t7")
        live = self.live["t7"] = _LiveTxn("t7")
        c1.update(txn, rids[7], ("w", 70))
        live.writes[rids[7]] = ("w", 70)
        # Stabilize the in-flight update (push + WAL-forced flush), so
        # the restart's undo pass scans and compensates it; a merely
        # appended record would vanish with the crash (section 2.1).
        c1._ship_page(rids[7].page_id)
        server.flush_all()
        self._abandon("t7")           # stranded by the crash below
        system.crash_all()
        system.restart_all()
        # 13. Post-restart committed transaction.
        self._commit("C1", "t8", {rids[2]: ("w", 80)})
        # 14. (replication tier only) Primary fail-stop: the heartbeat
        #     detector notices, fences the old primary, and promotes
        #     the standby.  No new transactions — the promoted complex
        #     must expose exactly the durable state the single-node
        #     sweep ends with, which is what the digest parity check
        #     quantifies.
        if self.replication:
            rep = system.replication
            assert rep is not None
            system.crash_server()
            rep.run_failover()
            if not rep.stale_primary_probe():
                self.replication_violations.append(
                    "failover: stale-primary probe was not rejected by "
                    "the epoch fence")

    # -- post-crash verification ------------------------------------------

    def resolve_indoubt(self) -> None:
        """Settle every in-doubt 2PC branch (presumed abort) so the
        durability check sees decided state only."""
        coordinator = TwoPhaseCoordinator(self.system.server)
        coordinator.recover_decisions()
        for client_id in sorted(self.system.clients):
            client = self.system.clients[client_id]
            if not client.crashed:
                coordinator.resolve_indoubt_at(client)

    def classify_inflight(self) -> List[str]:
        """Classify transactions in flight at the crash from recovered
        state: all writes visible => committed; none => rolled back;
        a mix is an atomicity violation.

        Classification (and the oracle check below) uses the *current*
        vantage: after in-doubt resolution, a presumed-abort rollback
        lives in the resolving client's cache and log first (no-force),
        so the server-visible copy legitimately lags until the next
        checkpoint or privilege transfer.
        """
        violations: List[str] = []
        for label in sorted(self.live):
            live = self.live[label]
            matches = []
            for rid, value in live.writes.items():
                matches.append(self._value(rid) == value)
            if not matches:
                self.outcomes[label] = "no-writes"
                continue
            if all(matches):
                for rid, value in live.writes.items():
                    self.oracle.note_committed_update(rid, value)
                self.outcomes[label] = "committed"
            elif not any(matches):
                for rid, value in live.writes.items():
                    self.oracle.note_uncommitted_value(rid, value)
                self.outcomes[label] = "rolled-back"
            else:
                survived = sum(matches)
                violations.append(
                    f"atomicity: txn {label} survived partially "
                    f"({survived}/{len(matches)} writes present)"
                )
                self.outcomes[label] = "torn"
        self.live.clear()
        return violations

    def verify(self) -> List[str]:
        violations = [str(v)
                      for v in self.oracle.verify(self.system, "current")]
        violations.extend(check_all(self.system))
        violations.extend(self.replication_violations)
        return violations

    def probe(self) -> List[str]:
        """Prove the recovered complex still commits new work."""
        client = self.system.client("C1")
        txn = client.begin("probe")
        rid = self.rids[5]
        client.update(txn, rid, ("probe", 1))
        client.commit(txn)
        if self.system.current_value(rid) != ("probe", 1):
            return ["post-recovery probe commit is not visible"]
        return []

    def _value(self, rid: RecordId) -> Any:
        try:
            return self.system.current_value(rid)
        except ReproError:
            return _GONE

    def final_values(self) -> List[Tuple[str, str]]:
        """Canonical recovered state over every tracked record."""
        return [(str(rid), repr(self._value(rid)))
                for rid in self.oracle.tracked_rids()]


_GONE = "<missing>"


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------

@dataclass
class ExplorerSummary:
    """Aggregate outcome of one sweep."""

    seed: int
    quick: bool
    census: Dict[str, int]
    results: List[ScheduleResult]
    #: Whether the script's transactions ran through the event-driven
    #: engine (``--engine``) instead of the direct client API.
    engine: bool = False
    #: Which recovery engine every schedule's recoveries ran under.
    recovery_engine: str = "serial"
    #: Whether the sweep ran against a complex with a warm standby
    #: attached (plus the fail-stop + failover coda).
    replication: bool = False

    @property
    def schedules_explored(self) -> int:
        return len(self.results)

    @property
    def points_covered(self) -> int:
        return len(self.census)

    @property
    def nested_schedules(self) -> int:
        return sum(1 for r in self.results if len(r.schedule) > 1)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for result in self.results:
            out.extend(f"{result.schedule_id}: {v}"
                       for v in result.violations)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "engine": self.engine,
            "recovery_engine": self.recovery_engine,
            "replication": self.replication,
            "schedules_explored": self.schedules_explored,
            "points_covered": self.points_covered,
            "nested_schedules": self.nested_schedules,
            "census": dict(sorted(self.census.items())),
            "violations": self.violations,
            "results": [result.to_dict() for result in self.results],
        }

    def render_text(self) -> str:
        fired = sum(1 for r in self.results if r.fired)
        lines = [
            f"chaos sweep: seed={self.seed} "
            f"mode={'quick' if self.quick else 'full'}"
            f"{' executor=engine' if self.engine else ''}"
            f"{' replication=on' if self.replication else ''}"
            f"{'' if self.recovery_engine == 'serial' else ' recovery=' + self.recovery_engine}",
            f"  crashpoints censused : {self.points_covered}"
            f" (of {len(CRASHPOINTS)} instrumented)",
            f"  schedules explored   : {self.schedules_explored}"
            f" ({self.nested_schedules} nested crash-during-recovery)",
            f"  schedules that fired : {fired}",
            f"  violations           : {len(self.violations)}",
        ]
        for violation in self.violations:
            lines.append(f"    FAIL {violation}")
        if not self.violations:
            lines.append("  all schedules recovered to a consistent, "
                         "operational complex")
        return "\n".join(lines)


class CrashScheduleExplorer:
    """Enumerate, run and replay crash schedules over the chaos script."""

    def __init__(self, seed: int = 0, quick: bool = False,
                 budget: Optional[int] = None,
                 engine: bool = False, sanitizer: bool = False,
                 recovery_engine: str = "serial",
                 flight: bool = False,
                 flight_dir: Optional[str] = None,
                 replication: bool = False) -> None:
        self.seed = seed
        self.quick = quick
        self.budget = budget
        self.engine = engine
        self.sanitizer = sanitizer
        self.recovery_engine = recovery_engine
        self.replication = replication
        #: Arm the per-node flight recorder for every run; dumps are
        #: captured on crashpoints / sanitizer violations / durability
        #: violations and hashed into ``ScheduleResult.flight_sha``.
        self.flight = flight or flight_dir is not None
        #: When set, persist each crashing schedule's dumps here as
        #: ``<schedule id>.flight.json`` (canonical, byte-stable).
        self.flight_dir = flight_dir
        self._census: Optional[Dict[str, int]] = None
        self._explored = 0

    # -- census -----------------------------------------------------------

    def census(self) -> Dict[str, int]:
        """Run the script with no schedule; map crashpoint -> hits.

        The census is the ground truth for enumeration: a schedule is
        only worth running if its first leg's point is actually reached
        (at the armed hit count) by the unperturbed script.
        """
        if self._census is None:
            run, _result = self._execute(())
            self._census = run.plan.hit_counts()
        return self._census

    # -- enumeration ------------------------------------------------------

    def schedules(self) -> List[Schedule]:
        """Every schedule the sweep will run, in deterministic order.

        Full mode: one single-leg schedule per censused point at hit 1,
        a second at the midpoint hit for points reached repeatedly, and
        one nested two-leg schedule per recovery-pass point (crash again
        during the recovery from the first crash).  Quick mode keeps one
        representative per crashpoint family plus one nested schedule
        per recovery pass — the CI smoke tier.
        """
        counts = self.census()
        points = [p for p in CRASHPOINTS if counts.get(p, 0) > 0]
        schedules: List[Schedule] = []
        if self.quick:
            families = set()
            for point in points:
                family = point.rsplit(".", 1)[0]
                if family in families:
                    continue
                families.add(family)
                schedules.append(((point, 1),))
            nested = [p for p in ("recovery.analysis.scan",
                                  "recovery.redo.scan",
                                  "recovery.undo.scan") if counts.get(p)]
            # Crash-during-promotion, then crash again during the
            # retried promotion: promotion must be restartable.
            nested.extend(p for p in ("replication.promote.before_fence",
                                      "replication.promote.before_checkpoint",
                                      "replication.promote.before_restart")
                          if counts.get(p))
        else:
            for point in points:
                schedules.append(((point, 1),))
                midpoint = (counts[point] + 1) // 2
                if midpoint > 1:
                    schedules.append(((point, midpoint),))
            nested = [p for p in points if is_recovery_point(p)]
        for point in nested:
            schedules.append(((point, 1), (point, 1)))
        if self.budget is not None:
            schedules = schedules[:self.budget]
        return schedules

    # -- execution --------------------------------------------------------

    def run_schedule(self, schedule: Schedule) -> ScheduleResult:
        """Run the script under one schedule and verify recovery."""
        _run, result = self._execute(schedule)
        return result

    def replay(self, sid: str) -> ScheduleResult:
        """Re-run a schedule from its id (seed travels in the id)."""
        seed, schedule = parse_schedule_id(sid)
        replayer = CrashScheduleExplorer(seed=seed, engine=self.engine,
                                         sanitizer=self.sanitizer,
                                         recovery_engine=self.recovery_engine,
                                         flight=self.flight,
                                         flight_dir=self.flight_dir,
                                         replication=self.replication)
        return replayer.run_schedule(schedule)

    def explore(self) -> ExplorerSummary:
        """The sweep: census, enumerate, run everything, summarize."""
        census = self.census()
        results = [self.run_schedule(schedule)
                   for schedule in self.schedules()]
        return ExplorerSummary(seed=self.seed, quick=self.quick,
                               census=census, results=results,
                               engine=self.engine,
                               recovery_engine=self.recovery_engine,
                               replication=self.replication)

    def _execute(self, schedule: Schedule) -> Tuple[_WorkloadRun,
                                                    ScheduleResult]:
        run = _WorkloadRun(self.seed, schedule, engine=self.engine,
                           sanitizer=self.sanitizer,
                           recovery_engine=self.recovery_engine,
                           flight=self.flight,
                           replication=self.replication)
        recorder = run.system.flight

        def capture(reason: str) -> None:
            # Freeze the rings at the failure instant, before recovery
            # runs and overwrites them with its own events.
            if recorder is not None:
                recorder.capture(reason)

        self._explored += 1
        run.plan.schedules_explored += 1
        fired: List[Tuple[str, int]] = []
        script_completed = False
        try:
            run.run_script()
            script_completed = True
        except CrashPointReached as crash:
            fired.append((crash.point, crash.leg))
            capture(f"crashpoint:{crash.point}@{crash.leg}")
        except SanitizerViolation:
            capture("sanitizer")
            raise
        # Every run ends in a whole-complex crash + recovery: either the
        # scheduled crash fired mid-script, or the completed script gets
        # one final clean quiesce.  Recovery itself may crash again
        # (nested legs); restart until it completes.  A crash that fired
        # mid-promotion leaves the manager in "candidate": the promotion
        # is retried first (it is the recovery pass in flight — the old
        # primary is fenced or dead, so a plain restart would be wrong).
        while True:
            rep = run.system.replication
            if rep is not None and rep.state == "candidate":
                try:
                    rep.promote()
                    if not rep.stale_primary_probe():
                        run.replication_violations.append(
                            "failover: stale-primary probe was not "
                            "rejected by the epoch fence")
                except CrashPointReached as crash:
                    fired.append((crash.point, crash.leg))
                    capture(f"crashpoint:{crash.point}@{crash.leg}")
                continue
            run.system.crash_all()
            try:
                run.system.restart_all()
                break
            except CrashPointReached as crash:
                fired.append((crash.point, crash.leg))
                capture(f"crashpoint:{crash.point}@{crash.leg}")
            except SanitizerViolation:
                capture("sanitizer")
                raise
        run.resolve_indoubt()
        violations = run.classify_inflight()
        violations.extend(run.verify())
        final_values = run.final_values()
        violations.extend(run.probe())
        if violations:
            capture("durability-violation")
        sid = schedule_id(self.seed, schedule)
        digest = _digest(sid, fired, script_completed, run.outcomes,
                         violations, final_values, run.plan)
        durability = _durability_digest(sid, run.outcomes, violations,
                                        final_values)
        result = ScheduleResult(
            schedule_id=sid,
            schedule=schedule,
            fired=fired,
            script_completed=script_completed,
            exhausted=run.plan.schedule_exhausted,
            outcomes=dict(run.outcomes),
            violations=violations,
            hit_counts=run.plan.hit_counts(),
            digest=digest,
            durability_digest=durability,
        )
        if recorder is not None:
            result.flight_dumps = list(recorder.dumps)
            dumps_json = recorder.dumps_json()
            result.flight_sha = hashlib.sha256(
                dumps_json.encode()).hexdigest()
            if self.flight_dir is not None and fired:
                self._persist_flight(sid, dumps_json)
        return run, result

    def _persist_flight(self, sid: str, dumps_json: str) -> None:
        assert self.flight_dir is not None
        os.makedirs(self.flight_dir, exist_ok=True)
        name = re.sub(r"[^A-Za-z0-9._-]", "_", sid) + ".flight.json"
        with open(os.path.join(self.flight_dir, name), "w",
                  encoding="utf-8") as handle:
            handle.write(dumps_json)


def _digest(sid: str, fired: List[Tuple[str, int]], script_completed: bool,
            outcomes: Dict[str, str], violations: List[str],
            final_values: List[Tuple[str, str]], plan: FaultPlan) -> str:
    """Canonical sha256 of everything a run decided; replays must match."""
    payload = {
        "schedule_id": sid,
        "fired": [list(leg) for leg in fired],
        "script_completed": script_completed,
        "outcomes": dict(sorted(outcomes.items())),
        "violations": list(violations),
        "final_values": [list(pair) for pair in final_values],
        "counters": {
            "faults_injected": plan.faults_injected,
            "torn_writes": plan.torn_writes,
            "io_retries": plan.io_retries,
            "crashpoints_hit": plan.crashpoints_hit,
        },
        "hits": dict(sorted(plan.hit_counts().items())),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _durability_digest(sid: str, outcomes: Dict[str, str],
                       violations: List[str],
                       final_values: List[Tuple[str, str]]) -> str:
    """sha256 over the engine-independent slice of a run's outcome.

    The full ``_digest`` pins fault-plan counters and crashpoint hit
    counts, which legitimately differ between recovery engines (they
    fire per-record crashpoints on different scan shapes).  What must
    NOT differ is what the complex *decided*: transaction outcomes,
    violations, and the recovered values.  Matrix mode compares exactly
    this slice across engines, schedule id by schedule id.
    """
    payload = {
        "schedule_id": sid,
        "outcomes": dict(sorted(outcomes.items())),
        "violations": list(violations),
        "final_values": [list(pair) for pair in final_values],
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Replication parity
# ---------------------------------------------------------------------------

def run_replication_parity(seed: int = 0, quick: bool = False,
                           budget: Optional[int] = None,
                           engine: bool = False) -> Dict[str, Any]:
    """The same sweep single-node and replicated; durability must agree.

    The replicated sweep runs the identical script against a complex
    with a warm standby attached (every commit synchronously shipped)
    plus a fail-stop + failover coda, and additionally explores the
    replication crashpoints.  For every schedule id the two sweeps have
    in common — i.e. every non-replication crashpoint — the durability
    digests must be byte-identical: attaching a standby, shipping every
    log record, and failing over must not change a single transaction
    outcome or recovered value.
    """
    single = CrashScheduleExplorer(seed=seed, quick=quick, budget=budget,
                                   engine=engine).explore()
    replicated = CrashScheduleExplorer(seed=seed, quick=quick,
                                       budget=budget, engine=engine,
                                       replication=True).explore()
    base = {r.schedule_id: r.durability_digest for r in single.results}
    mismatches: List[str] = []
    compared = 0
    replication_only = 0
    for result in replicated.results:
        expected = base.get(result.schedule_id)
        if expected is None:
            replication_only += 1
            continue
        compared += 1
        if result.durability_digest != expected:
            mismatches.append(
                f"{result.schedule_id}: durability diverges between "
                f"single-node and replicated sweeps")
    violations = list(single.violations) + list(replicated.violations)
    return {
        "seed": seed,
        "quick": quick,
        "schedules_compared": compared,
        "replication_only_schedules": replication_only,
        "mismatches": mismatches,
        "violations": violations,
        "single": single.to_dict(),
        "replicated": replicated.to_dict(),
    }


def render_parity_text(report: Dict[str, Any]) -> str:
    lines = [
        f"replication parity: seed={report['seed']} "
        f"mode={'quick' if report['quick'] else 'full'}",
        f"  shared schedules compared : {report['schedules_compared']}",
        f"  replication-only schedules: "
        f"{report['replication_only_schedules']}",
    ]
    for mismatch in report["mismatches"]:
        lines.append(f"    FAIL {mismatch}")
    for violation in report["violations"]:
        lines.append(f"    FAIL {violation}")
    if not report["mismatches"] and not report["violations"]:
        lines.append("  replicated complex recovered every shared "
                     "schedule to the identical durable state")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Engine matrix
# ---------------------------------------------------------------------------

def run_engine_matrix(seed: int = 0, quick: bool = False,
                      budget: Optional[int] = None, engine: bool = False,
                      sanitizer: bool = False) -> Dict[str, Any]:
    """The same sweep under every recovery engine; durability must agree.

    Each engine gets its own census and enumeration (its crashpoint
    shapes differ), then every schedule id two engines have in common
    must carry identical durability digests — same transaction
    outcomes, same violations (none), same recovered values.
    """
    from repro.recovery.engines import ENGINE_NAMES

    summaries: Dict[str, ExplorerSummary] = {}
    for name in ENGINE_NAMES:
        explorer = CrashScheduleExplorer(seed=seed, quick=quick,
                                         budget=budget, engine=engine,
                                         sanitizer=sanitizer,
                                         recovery_engine=name)
        summaries[name] = explorer.explore()
    baseline = summaries["serial"]
    base_durability = {r.schedule_id: r.durability_digest
                       for r in baseline.results}
    mismatches: List[str] = []
    compared = 0
    for name, summary in summaries.items():
        if name == "serial":
            continue
        for result in summary.results:
            expected = base_durability.get(result.schedule_id)
            if expected is None:
                continue
            compared += 1
            if result.durability_digest != expected:
                mismatches.append(
                    f"{name}: {result.schedule_id} durability diverges "
                    f"from serial")
    violations = [v for s in summaries.values() for v in s.violations]
    return {
        "seed": seed,
        "quick": quick,
        "schedules_compared": compared,
        "mismatches": mismatches,
        "violations": violations,
        "engines": {name: summary.to_dict()
                    for name, summary in summaries.items()},
    }


def render_matrix_text(report: Dict[str, Any]) -> str:
    lines = [
        f"chaos engine matrix: seed={report['seed']} "
        f"mode={'quick' if report['quick'] else 'full'}",
    ]
    for name, summary in report["engines"].items():
        lines.append(
            f"  {name:12s}: {summary['schedules_explored']} schedules, "
            f"{len(summary['violations'])} violations")
    lines.append(f"  durability digests compared across engines: "
                 f"{report['schedules_compared']}")
    for mismatch in report["mismatches"]:
        lines.append(f"    FAIL {mismatch}")
    for violation in report["violations"]:
        lines.append(f"    FAIL {violation}")
    if not report["mismatches"] and not report["violations"]:
        lines.append("  all engines recovered every schedule to the "
                     "identical durable state")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.chaos",
        description="Exhaustive crash-schedule sweep over the fault plane.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for the fault plan (default 0)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke tier: one schedule per crashpoint "
                             "family (the CI chaos job)")
    parser.add_argument("--budget", type=int, default=None,
                        help="cap the number of schedules run")
    parser.add_argument("--engine", action="store_true",
                        help="drive the script's transactions through "
                             "the event-driven execution engine")
    parser.add_argument("--sanitizer", action="store_true",
                        help="arm the runtime latch/lock-order sanitizer "
                             "for every schedule (a violation aborts the "
                             "sweep with a traceback)")
    parser.add_argument("--recovery-engine", default="serial",
                        choices=["serial", "partitioned", "redo_only",
                                 "matrix"],
                        help="recovery engine for every recovery in the "
                             "sweep; 'matrix' sweeps under all three and "
                             "requires identical durability digests")
    parser.add_argument("--replication", action="store_true",
                        help="attach a warm standby to every run, add a "
                             "fail-stop + failover coda, and explore the "
                             "replication crashpoints")
    parser.add_argument("--replication-parity", action="store_true",
                        help="run the sweep single-node AND replicated; "
                             "shared schedule ids must carry identical "
                             "durability digests")
    parser.add_argument("--flight-dir", metavar="DIR",
                        help="arm the per-node flight recorder and persist "
                             "each crashing schedule's dumps here as "
                             "canonical JSON (byte-identical per replay)")
    parser.add_argument("--replay", metavar="SCHEDULE_ID",
                        help="re-run one schedule by id (twice, checking "
                             "the digests match) instead of sweeping")
    parser.add_argument("--list", action="store_true",
                        help="print the schedule ids without running them")
    parser.add_argument("--out", metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    if args.replication_parity and not args.replay and not args.list:
        report = run_replication_parity(seed=args.seed, quick=args.quick,
                                        budget=args.budget,
                                        engine=args.engine)
        print(render_parity_text(report))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"report written to {args.out}")
        return 0 if not report["mismatches"] and not report["violations"] \
            else 1

    if args.recovery_engine == "matrix" and not args.replay and not args.list:
        report = run_engine_matrix(seed=args.seed, quick=args.quick,
                                   budget=args.budget, engine=args.engine,
                                   sanitizer=args.sanitizer)
        print(render_matrix_text(report))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"report written to {args.out}")
        return 0 if not report["mismatches"] and not report["violations"] \
            else 1

    recovery_engine = ("serial" if args.recovery_engine == "matrix"
                       else args.recovery_engine)
    explorer = CrashScheduleExplorer(seed=args.seed, quick=args.quick,
                                     budget=args.budget,
                                     engine=args.engine,
                                     sanitizer=args.sanitizer,
                                     recovery_engine=recovery_engine,
                                     flight_dir=args.flight_dir,
                                     replication=args.replication)
    if args.replay:
        first = explorer.replay(args.replay)
        second = explorer.replay(args.replay)
        stable = first.digest == second.digest
        if explorer.flight:
            stable = stable and first.flight_sha == second.flight_sha
        print(f"replay {first.schedule_id}: fired={first.fired} "
              f"outcomes={dict(sorted(first.outcomes.items()))}")
        print(f"digest {first.digest} "
              f"({'stable across replays' if stable else 'UNSTABLE'})")
        if first.flight_sha:
            print(f"flight sha {first.flight_sha} "
                  f"({len(first.flight_dumps)} dump(s))")
        for violation in first.violations:
            print(f"  FAIL {violation}")
        return 0 if stable and not first.violations else 1

    if args.list:
        for schedule in explorer.schedules():
            print(schedule_id(args.seed, schedule))
        return 0

    summary = explorer.explore()
    print(summary.render_text())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    return 0 if not summary.violations else 1


if __name__ == "__main__":
    sys.exit(main())
