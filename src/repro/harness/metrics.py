"""Metric snapshots over a whole complex.

Benchmarks run a workload between two snapshots and report the delta —
messages, bytes, page I/O, log volume, forces, lock calls, cache hit
rates — the counter-based cost model DESIGN.md's substitution table
explains.

:func:`snapshot` is a pure collection over the central
:class:`~repro.obs.registry.MetricsRegistry`: each subsystem registers
its counters once (``repro.obs.registry``), and the snapshot dataclass
is simply the registry's field set frozen at one instant.  A unit test
asserts the registry's names and :class:`MetricsSnapshot`'s fields stay
identical, so a counter cannot be registered without surfacing here or
vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict

from repro.core.system import ClientServerSystem
from repro.obs.registry import MetricsRegistry, build_default_registry

#: The registry behind every snapshot (module-level: built once).
DEFAULT_REGISTRY: MetricsRegistry = build_default_registry()


@dataclass(frozen=True)
class MetricsSnapshot:
    """Cumulative counters for one complex at one instant."""

    messages: int = 0
    message_bytes: int = 0
    page_ships: int = 0
    page_requests: int = 0
    log_ships: int = 0
    lock_requests: int = 0
    p_lock_requests: int = 0
    callbacks: int = 0
    lsn_requests: int = 0

    disk_reads: int = 0
    disk_writes: int = 0
    log_appends: int = 0
    log_forces: int = 0
    log_bytes: int = 0
    #: Group commit (PR 3): commit forces that rode another device force.
    forces_saved: int = 0
    #: Device forces that covered a whole deferred-commit group.
    group_forces: int = 0
    wal_forces: int = 0
    commit_forces: int = 0

    #: Media-recovery I/O: backup copies read back from the archive.
    archive_reads: int = 0
    #: Page copies written into the archive by backups.
    archive_writes: int = 0
    #: Space-map page updates (allocate/deallocate) across all clients.
    smp_updates: int = 0

    client_lock_calls: int = 0
    locks_avoided: int = 0
    llm_local_grants: int = 0
    glm_requests: int = 0
    #: Reduce-callback rounds skipped because a conflicting holder had
    #: already confirmed (since its last interaction) it still needs
    #: the resource — only populated with lock caching off.
    callbacks_suppressed: int = 0

    client_cache_hits: int = 0
    client_cache_misses: int = 0
    commits: int = 0
    aborts: int = 0
    pages_shipped_at_commit: int = 0

    #: Transport-fault counters (all zero under ReliableTransport).
    message_drops: int = 0
    message_retries: int = 0
    rpc_timeouts: int = 0
    #: Whole simulated ticks spent in seeded retry backoff.
    backoff_ticks: int = 0
    #: Requests rejected because the sender was fenced at a stale
    #: failover epoch.
    stale_epoch_rejections: int = 0

    #: Fault-plane counters (all zero with no FaultPlan attached).
    faults_injected: int = 0
    torn_writes: int = 0
    io_retries: int = 0
    crashpoints_hit: int = 0
    schedules_explored: int = 0

    #: Replication counters (all zero with no ReplicationManager).
    frames_shipped: int = 0
    ship_acks: int = 0
    records_applied: int = 0
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0
    failovers: int = 0
    #: Logical ticks spent inside promotions (detection to takeover).
    failover_ticks: int = 0

    #: Histogram / time-series states keyed by manifest name
    #: (``TRACKED_HISTOGRAM_ATTRS`` / ``TRACKED_TIMESERIES_ATTRS``).
    #: Empty unless a ``MetricsHub`` is attached to the complex
    #: (``SystemConfig.metrics_enabled``).  Excluded from equality and
    #: ``minus`` arithmetic: distribution state is cumulative, so a
    #: delta snapshot simply carries the later state.
    histograms: Dict[str, Any] = field(default_factory=dict, compare=False)

    def minus(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Per-field counter difference (this - other).

        The ``histograms`` mapping is not subtractable; the delta
        carries this (the later) snapshot's states unchanged.
        """
        values = {
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self) if f.name != "histograms"
        }
        return MetricsSnapshot(histograms=dict(self.histograms), **values)

    def as_dict(self) -> Dict[str, int]:
        """Counter fields only — the benchmark-JSON shape is stable."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "histograms"}

    def quantiles(self, name: str) -> Dict[str, int]:
        """p50/p95/p99 of one tracked histogram (zeros if absent)."""
        state = self.histograms.get(name) or {}
        return {q: state.get(q, 0) for q in ("p50", "p95", "p99")}

    @property
    def client_cache_hit_rate(self) -> float:
        total = self.client_cache_hits + self.client_cache_misses
        return self.client_cache_hits / total if total else 0.0


def snapshot(system: ClientServerSystem) -> MetricsSnapshot:
    """Capture the complex's cumulative counters via the registry."""
    return MetricsSnapshot(
        histograms=DEFAULT_REGISTRY.collect_histograms(system),
        **DEFAULT_REGISTRY.collect(system),
    )


def measure(system: ClientServerSystem,
            action: Callable[[], object]) -> MetricsSnapshot:
    """Run ``action()`` and return the counter delta it caused."""
    before = snapshot(system)
    action()
    return snapshot(system).minus(before)
