"""Metric snapshots over a whole complex.

Benchmarks run a workload between two snapshots and report the delta —
messages, bytes, page I/O, log volume, forces, lock calls, cache hit
rates — the counter-based cost model DESIGN.md's substitution table
explains.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from repro.core.system import ClientServerSystem
from repro.net.messages import MsgType


@dataclass(frozen=True)
class MetricsSnapshot:
    """Cumulative counters for one complex at one instant."""

    messages: int = 0
    message_bytes: int = 0
    page_ships: int = 0
    page_requests: int = 0
    log_ships: int = 0
    lock_requests: int = 0
    p_lock_requests: int = 0
    callbacks: int = 0
    lsn_requests: int = 0

    disk_reads: int = 0
    disk_writes: int = 0
    log_appends: int = 0
    log_forces: int = 0
    log_bytes: int = 0
    wal_forces: int = 0
    commit_forces: int = 0

    client_lock_calls: int = 0
    locks_avoided: int = 0
    llm_local_grants: int = 0
    glm_requests: int = 0

    client_cache_hits: int = 0
    client_cache_misses: int = 0
    commits: int = 0
    aborts: int = 0
    pages_shipped_at_commit: int = 0

    #: Transport-fault counters (all zero under ReliableTransport).
    message_drops: int = 0
    message_retries: int = 0
    rpc_timeouts: int = 0

    def minus(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Per-field difference (this - other)."""
        values = {
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        }
        return MetricsSnapshot(**values)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def client_cache_hit_rate(self) -> float:
        total = self.client_cache_hits + self.client_cache_misses
        return self.client_cache_hits / total if total else 0.0


def snapshot(system: ClientServerSystem) -> MetricsSnapshot:
    """Capture the complex's cumulative counters."""
    net = system.network.stats
    server = system.server
    clients = list(system.clients.values())
    return MetricsSnapshot(
        messages=net.messages,
        message_bytes=net.bytes,
        page_ships=net.count(MsgType.PAGE_SHIP),
        page_requests=net.count(MsgType.PAGE_REQUEST),
        log_ships=net.count(MsgType.LOG_SHIP),
        lock_requests=net.count(MsgType.LOCK_REQUEST),
        p_lock_requests=net.count(MsgType.P_LOCK_REQUEST),
        callbacks=net.count(MsgType.CALLBACK),
        lsn_requests=net.count(MsgType.LSN_REQUEST),
        disk_reads=server.disk.reads,
        disk_writes=server.disk.writes,
        log_appends=server.log.stable.appends,
        log_forces=server.log.stable.forces,
        log_bytes=server.log.stable.bytes_appended,
        wal_forces=server.wal_forces,
        commit_forces=server.commit_forces,
        client_lock_calls=sum(c.lock_calls for c in clients),
        locks_avoided=sum(c.locks_avoided_by_commit_lsn for c in clients),
        llm_local_grants=sum(c.llm.local_only_grants for c in clients),
        glm_requests=server.glm.logical_requests,
        client_cache_hits=sum(c.pool.hits for c in clients),
        client_cache_misses=sum(c.pool.misses for c in clients),
        commits=sum(c.commits for c in clients),
        aborts=sum(c.aborts for c in clients),
        pages_shipped_at_commit=sum(c.pages_shipped_at_commit for c in clients),
        message_drops=net.drops,
        message_retries=net.retries,
        rpc_timeouts=net.timeouts,
    )


def measure(system: ClientServerSystem, action) -> MetricsSnapshot:
    """Run ``action()`` and return the counter delta it caused."""
    before = snapshot(system)
    action()
    return snapshot(system).minus(before)
