"""System-wide configuration and policy knobs.

A single :class:`SystemConfig` travels through the whole simulated
complex.  ARIES/CSA proper is the default configuration; the baseline
systems of the paper's section 4 (ESM-CS, ObjectStore-style, the
no-client-checkpoint variant of section 2.6.2) are expressed as policy
deviations from that default, so that every comparison in the benchmark
suite isolates exactly the policy delta the paper discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.faults import FaultPlan


class LockGranularity(enum.Enum):
    """Finest lock granularity the system uses for logical locks."""

    RECORD = "record"
    PAGE = "page"
    TABLE = "table"


class CommitPagePolicy(enum.Enum):
    """What happens to a transaction's dirty pages at commit time."""

    #: ARIES/CSA: nothing is shipped; pages stay cached and dirty.
    NO_FORCE = "no-force"
    #: ESM-CS: all pages modified by the transaction are shipped to the
    #: server before the commit is acknowledged.
    FORCE_TO_SERVER = "force-to-server"
    #: ObjectStore-style: pages are shipped to the server *and* the server
    #: writes them to disk before the commit is acknowledged.
    FORCE_TO_DISK = "force-to-disk"


class CommitCachePolicy(enum.Enum):
    """What happens to the client's cache at transaction termination."""

    #: ARIES/CSA and ObjectStore: pages stay cached across transactions.
    RETAIN = "retain"
    #: ESM-CS: the client purges its entire buffer pool at termination.
    PURGE = "purge"


class RollbackSite(enum.Enum):
    """Where normal (non-restart) transaction rollback executes."""

    #: ARIES/CSA: the client that ran the transaction performs the rollback.
    CLIENT = "client"
    #: ESM-CS: the server performs the rollback (with conditional undo,
    #: since client pages were not forced over first).
    SERVER = "server"


class ClientRecoveryInfo(enum.Enum):
    """Where the recovery starting points for a failed client live."""

    #: Section 2.6.1 (the paper's choice): clients take checkpoints.
    CLIENT_CHECKPOINTS = "client-checkpoints"
    #: Section 2.6.2: no client checkpoints; the server keeps RecAddr in
    #: the GLM lock table entry of each update-privilege P-lock.
    GLM_LOCK_TABLE = "glm-lock-table"


class PageTransport(enum.Enum):
    """How a client's dirty state reaches the server.

    The paper's future-work section ("we plan to deal with recovery
    issues when individual objects/records, rather than pages, are
    exchanged") motivates LOG_REPLAY: the client ships only its log
    records — which carry full physical redo information — and the
    server *materializes* its page copy by rolling it forward from the
    page's RecAddr.  No page image crosses the wire.
    """

    #: Classic ARIES/CSA: full page images travel.
    PAGE_IMAGE = "page-image"
    #: Future-work mode: only log records travel; the server replays.
    LOG_REPLAY = "log-replay"


class TransportPolicy(enum.Enum):
    """Delivery behavior of the simulated network's transport layer."""

    #: Every message is delivered synchronously and in order — the
    #: deterministic default, with traffic counters identical to the
    #: pre-RPC direct-call implementation.
    RELIABLE = "reliable"
    #: Seeded drop/delay injection; client stubs retry with backoff and
    #: server dispatchers deduplicate, so recovery invariants must hold
    #: over a lossy channel.
    FAULTY = "faulty"


class LsnAssignment(enum.Enum):
    """How clients obtain LSNs for the log records they write."""

    #: ARIES/CSA section 2.2: locally, as max(page_LSN, Local_Max_LSN) + 1.
    LOCAL = "local"
    #: Strawman for experiment E10: a synchronous round trip to the server
    #: per log record (what local assignment saves).
    SERVER_ROUND_TRIP = "server-round-trip"


@dataclass(frozen=True)
class RpcBackoff:
    """Seeded exponential-backoff-with-cap retry policy for RPC stubs.

    One policy object replaces the three scalar RPC retry knobs: the
    stub retries a timed-out exchange up to ``max_retries`` times,
    waiting ``min(base * 2**attempt, cap)`` simulated units plus a
    seeded jitter of up to ``jitter`` times that delay.  The jitter
    stream is seeded from ``SystemConfig.seed`` when the policy is
    instantiated, so ``TrafficStats.backoff_ticks`` is deterministic
    per seed (two same-seed runs back off identically; two clients in
    one run do not stampede in lockstep).
    """

    #: Retries before the destination is declared unavailable.
    max_retries: int = 8
    #: First backoff wait in simulated units; doubles per attempt.
    base: float = 1.0
    #: Upper bound on a single backoff wait.
    cap: float = 256.0
    #: Simulated units a stub waits before treating an exchange as lost.
    timeout: float = 10.0
    #: Fraction of the capped delay added as seeded jitter (0 disables).
    jitter: float = 0.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete policy configuration for one simulated complex.

    The defaults describe ARIES/CSA.  Use the ``esm_cs()``,
    ``objectstore()`` and ``no_client_checkpoints()`` constructors for the
    paper's comparison systems.
    """

    #: Bytes per database page (payload capacity for records).
    page_size: int = 4096
    #: Frames in the server buffer pool.
    server_buffer_frames: int = 256
    #: Frames in each client buffer pool.
    client_buffer_frames: int = 64
    #: Pages covered by one space map page.
    smp_coverage: int = 512

    lock_granularity: LockGranularity = LockGranularity.RECORD
    page_transport: PageTransport = PageTransport.PAGE_IMAGE
    commit_page_policy: CommitPagePolicy = CommitPagePolicy.NO_FORCE
    commit_cache_policy: CommitCachePolicy = CommitCachePolicy.RETAIN
    rollback_site: RollbackSite = RollbackSite.CLIENT
    client_recovery_info: ClientRecoveryInfo = ClientRecoveryInfo.CLIENT_CHECKPOINTS
    lsn_assignment: LsnAssignment = LsnAssignment.LOCAL

    #: Whether the server computes and distributes Commit_LSN (section 3).
    commit_lsn_enabled: bool = True
    #: Compute Commit_LSN per table as well as globally (section 3: "it
    #: is possible to compute it on a per-file basis and get even more
    #: benefits") — one long transaction on one table then no longer
    #: blocks lock avoidance on the others.
    commit_lsn_per_table: bool = False
    #: Piggyback Max_LSN/Commit_LSN to a client every N server interactions
    #: with that client (section 3's Lamport-clock proximity scheme).
    max_lsn_sync_period: int = 8

    #: LLMs retain global locks after local transactions release them
    #: (the shared-disks lock-caching optimization referenced in section
    #: 2.1); the server calls cached locks back on conflict.
    llm_cache_locks: bool = True

    #: Dirty-page forwarding between clients (the section 4.1 discussion
    #: of [FrCL92]): on an update-privilege transfer the page travels
    #: directly to the requesting client after the sender's log records
    #: are acknowledged by the server; the server keeps a forwarded-dirty
    #: table so recovery bounds survive without receiving the image.
    enable_forwarding: bool = False

    #: Client checkpoint every N committed transactions (0 disables).
    client_checkpoint_interval: int = 16
    #: Server checkpoint every N log appends (0 disables).
    server_checkpoint_interval: int = 512

    #: ESM-CS logs a Commit Dirty Page List before each commit record.
    log_cdpl_at_commit: bool = False

    #: Group commit (section 2.1's force accounting, made active): defer
    #: commit-path log forces until this many have accumulated, then
    #: cover the whole group with one device force.  Synchronous forces
    #: (WAL, privilege transfer, checkpoints, recovery) always flush the
    #: open window into their own force.  ``0``/``1`` disables deferral,
    #: preserving one-force-per-commit semantics and counters exactly.
    #: The latency trade is real: a deferred commit is acknowledged with
    #: a flushed boundary that does not cover it, the committing client
    #: keeps its records buffered (section 2.1), and a *server* crash
    #: inside the window loses nothing — survivors replay their tails.
    #: Only if every node holding the records fails before the next
    #: force (e.g. ``crash_all`` mid-window) are the still-deferred
    #: commits rolled back — the asynchronous-commit trade (PostgreSQL's
    #: ``synchronous_commit=off``), since ``commit()`` here returns
    #: before the group force rather than waiting on it.
    group_commit_window: int = 0

    #: Deliberately omit client DPLs from the server checkpoint (the buggy
    #: construction of section 2.7 used by experiment E6).  Never enable
    #: outside that experiment.
    unsafe_server_checkpoint_excludes_clients: bool = False

    #: Which recovery engine ``Server.restart`` / ``recover_failed_client``
    #: run (``repro.recovery.engines``): ``"serial"`` is the paper's
    #: three-pass scan, byte-identical to the historical inline code;
    #: ``"partitioned"`` fuses analysis+redo filtering into one header
    #: scan, prunes per-partition supplementary scans to their minimum
    #: DPL RecAddr and resolves undo chains by address lookup instead of
    #: a full backward scan (identical pages, identical log bytes);
    #: ``"redo_only"`` is the single-pass engine of Sauer & Härder
    #: (arXiv 1409.3682) — losers are treated as never-redone and only
    #: their CLR/End stream is emitted, falling back to ``serial``
    #: whenever its applicability gates fail (prepared transactions,
    #: externalized loser updates, logical undo).
    recovery_engine: str = "serial"
    #: Page-id partitions the partitioned engine splits redo into (its
    #: deterministic worker units; merge order is partition index).
    recovery_partitions: int = 4

    # -- replication & failover ---------------------------------------

    #: Wire a log-shipped warm standby into the complex
    #: (``repro.replication``): the primary ships every durable log
    #: frame to a standby node over the typed RPC transport, a
    #: heartbeat failure detector watches the primary, and failover
    #: fences the old primary behind a bumped epoch before promoting
    #: the standby.  Off by default: with replication off the complex
    #: is byte-identical to the single-node system (the chaos digest
    #: parity test pins this).
    replication_enabled: bool = False
    #: Ship-ack semantics at commit force: ``True`` (the default when
    #: replication is on) makes the commit-path log force wait for the
    #: standby's durable ack, so no acknowledged commit can be lost to
    #: a primary failure — the failover durability oracle assumes this.
    #: ``False`` ships asynchronously (window of acked-but-unshipped
    #: commits, the classic async-replication trade).
    replication_sync_commit: bool = True
    #: The standby applies shipped redo into its page replica every N
    #: shipped records; between applies the shipped tail is durable in
    #: its log replica but not yet materialized.  Promotion rolls
    #: forward exactly that tail through the configured recovery
    #: engine — the smaller this interval, the warmer the standby.
    standby_apply_interval: int = 64
    #: Simulated ticks between primary heartbeats observed by the
    #: failure detector.
    heartbeat_interval: int = 2
    #: Consecutive missed heartbeats before the detector suspects the
    #: primary and starts an election (the candidate phase).
    heartbeat_miss_threshold: int = 3
    #: Fraction of the suspicion timeout added as seeded jitter, so two
    #: same-seed runs replay the same detection tick but the timeout is
    #: decorrelated across seeds.
    heartbeat_jitter: float = 0.25

    # -- transport & RPC ----------------------------------------------

    transport_policy: TransportPolicy = TransportPolicy.RELIABLE
    #: FAULTY only: probability each delivery attempt loses one leg of
    #: the exchange (split evenly between request and response).
    transport_drop_rate: float = 0.05
    #: FAULTY only: probability a delivered message is delayed.
    transport_delay_rate: float = 0.0
    #: FAULTY only: maximum simulated delay units per delayed message.
    transport_max_delay: float = 5.0
    #: FAULTY only: RNG seed for fault injection; ``None`` reuses ``seed``.
    transport_seed: "int | None" = None

    #: Retries a client stub attempts after a timed-out exchange before
    #: declaring the destination unavailable.  Superseded by
    #: :attr:`rpc_backoff` when that is set.
    rpc_max_retries: int = 8
    #: First retry backoff in simulated units; doubles per attempt.
    #: Superseded by :attr:`rpc_backoff` when that is set.
    rpc_backoff_base: float = 1.0
    #: Simulated units a stub waits before treating an exchange as lost.
    #: Superseded by :attr:`rpc_backoff` when that is set.
    rpc_timeout: float = 10.0
    #: The unified retry policy object (:class:`RpcBackoff`): seeded
    #: exponential backoff with a cap and optional jitter.  ``None``
    #: (the default) derives an equivalent policy from the three legacy
    #: scalar knobs above, with the cap placed where uncapped doubling
    #: would first exceed it — bit-for-bit the historical backoff
    #: sequence.
    rpc_backoff: Optional[RpcBackoff] = None
    #: Coalesce back-to-back RPCs on the same edge into one
    #: :class:`repro.net.rpc.BatchEnvelope` exchange (today: the commit
    #: path's log-ship + force pair).  Every sub-call keeps its own
    #: request id, charge, span, and dedup entry, so traffic counters
    #: are unchanged; only caller-side per-call overhead is amortized.
    #: Off by default so crashpoint placement between the coalesced
    #: calls and the default-config RPC ordering stay bit-identical.
    rpc_batching: bool = False
    #: Keep the last N delivery attempts in a ring-buffer trace
    #: (rendered by ``tools.logdump.message_trace``; 0 disables).
    message_trace_depth: int = 0

    #: Build and attach a :class:`repro.obs.Tracer` to every instrumented
    #: subsystem of the complex.  Off by default: an unattached hook
    #: costs one pointer comparison (the CI bench gate holds it ≤ 3%).
    trace_enabled: bool = False

    #: Build and attach a :class:`repro.obs.hist.MetricsHub` — the
    #: deterministic histogram / time-series plane (txn latency, lock
    #: waits, RPC round trips, log-force bytes, group-commit batches,
    #: recovery-pass sizes, restart progress) surfaced through
    #: ``harness.metrics.snapshot().histograms``.  Off by default: an
    #: unattached observation site costs one pointer comparison (the CI
    #: bench gate holds the disabled path ≤ 3%).
    metrics_enabled: bool = False

    #: Arm the per-node crash flight recorder with rings of this many
    #: recent trace events (0 disables).  Arming attaches a tracer if
    #: none is configured, since the recorder taps the trace stream.
    flight_recorder_depth: int = 0

    #: Build and attach a :class:`repro.sanitizer.Sanitizer` to every
    #: latch/lock/log hook of the complex.  The sanitizer raises
    #: :class:`repro.sanitizer.SanitizerViolation` on latch/lock order
    #: inversions, unpaired fixes at operation exit, and unforced-log
    #: page externalization.  Off by default: an unattached hook costs
    #: one pointer comparison (the CI bench gate holds it ≤ 5%).
    sanitizer: bool = False

    #: The unified fault plane (``repro.faults``): one seeded plan that
    #: drives *all* injection — transport drops/delays, torn page
    #: writes, transient I/O errors, partial log flushes, and armed
    #: crashpoint schedules.  ``None`` (the default) leaves every
    #: crashpoint hook at its one-pointer-comparison disabled cost and
    #: keeps all experiment tables byte-identical.
    fault_plan: Optional[FaultPlan] = None

    #: Deterministic seed for any randomized tie-breaking inside the
    #: complex (victim selection etc.).
    seed: int = 0

    #: Human-readable label used in benchmark tables.
    label: str = "ARIES/CSA"

    def with_overrides(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- named comparison systems -------------------------------------

    @staticmethod
    def aries_csa(**kwargs: object) -> "SystemConfig":
        """The paper's system (explicit alias of the defaults)."""
        return SystemConfig(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def esm_cs(**kwargs: object) -> "SystemConfig":
        """Client-server EXODUS as described in section 4.1."""
        base = SystemConfig(
            lock_granularity=LockGranularity.PAGE,
            commit_page_policy=CommitPagePolicy.FORCE_TO_SERVER,
            commit_cache_policy=CommitCachePolicy.PURGE,
            rollback_site=RollbackSite.SERVER,
            client_recovery_info=ClientRecoveryInfo.GLM_LOCK_TABLE,
            client_checkpoint_interval=0,
            commit_lsn_enabled=False,
            log_cdpl_at_commit=True,
            label="ESM-CS",
        )
        return base.with_overrides(**kwargs) if kwargs else base

    @staticmethod
    def objectstore(**kwargs: object) -> "SystemConfig":
        """ObjectStore-style policies as described in section 4.2."""
        base = SystemConfig(
            lock_granularity=LockGranularity.PAGE,
            commit_page_policy=CommitPagePolicy.FORCE_TO_DISK,
            commit_cache_policy=CommitCachePolicy.RETAIN,
            rollback_site=RollbackSite.CLIENT,
            commit_lsn_enabled=False,
            label="ObjectStore-style",
        )
        return base.with_overrides(**kwargs) if kwargs else base

    @staticmethod
    def no_client_checkpoints(**kwargs: object) -> "SystemConfig":
        """Section 2.6.2's variant: recovery info in the GLM lock table."""
        base = SystemConfig(
            lock_granularity=LockGranularity.PAGE,
            client_recovery_info=ClientRecoveryInfo.GLM_LOCK_TABLE,
            client_checkpoint_interval=0,
            label="ARIES/CSA (no client ckpts)",
        )
        return base.with_overrides(**kwargs) if kwargs else base
