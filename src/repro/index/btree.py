"""A page-based B+-tree with ARIES-style logging.

The tree is an access method layered on the client transaction API:
every page change is logged through ``Client.apply_logged_update``, so
redo/undo flow through the same recovery machinery as heap records.

Logging discipline (ARIES/IM flavor, simplified):

* the *logical* operations — inserting or deleting one ``(key, value)``
  entry — are undoable records with **logical undo** (the key may have
  migrated by undo time; see ``repro.index.undo``);
* *structural* modifications — page splits, root growth, empty-page
  deallocation — run inside **nested top actions**: their page changes
  are redo-only records, and a dummy CLR at the end makes rollback step
  over the whole action.  A committed split therefore survives the
  rollback of the transaction that happened to perform it;
* page allocation and deallocation go through the space map pages, and
  reallocated pages take their format LSN from the SMP (section 2.3) —
  index page reuse across clients is the paper's own motivating example.

Simplifications (documented in DESIGN.md): no merge/rebalance (only
empty-leaf deallocation, and only when the left sibling shares the
parent), no split-during-undo, unique keys.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.core import codec
from repro.core.log_records import UpdateOp
from repro.core.transaction import Transaction
from repro.errors import ReproError
from repro.index import node
from repro.index.keys import KeyLike, encode_key
from repro.index.undo import ROOT_META, encode_index_key
from repro.locking.lock_modes import LockMode
from repro.records.heap import decode_value, encode_value
from repro.storage.page import Page, PageKind


class DuplicateKeyError(ReproError):
    def __init__(self, key: KeyLike) -> None:
        super().__init__(f"key {key!r} already present")
        self.key = key


class KeyNotFoundError(ReproError):
    def __init__(self, key: KeyLike) -> None:
        super().__init__(f"key {key!r} not found")
        self.key = key


class BTree:
    """A transactional B+-tree bound to one client."""

    def __init__(self, client: Any, anchor_page_id: int,
                 lock_keys: bool = True) -> None:
        self.client = client
        self.anchor_page_id = anchor_page_id
        self.lock_keys = lock_keys
        self.splits = 0
        self.page_deallocations = 0

    # ------------------------------------------------------------------
    # Creation / attachment
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, client: Any, txn: Transaction,
               lock_keys: bool = True) -> "BTree":
        """Allocate a new tree (anchor plus an empty root leaf).

        Creation is ordinary undoable work: if the creating transaction
        rolls back, the allocations and the root pointer are undone.
        """
        anchor = client.allocate_page(txn, PageKind.DATA)
        root = client.allocate_page(
            txn, PageKind.INDEX_LEAF,
            initial_meta=[(node.LEVEL_KEY, 0), (node.NEXT_KEY, node.NO_SIBLING)],
        )
        client.apply_logged_update(
            txn, anchor, UpdateOp.META_SET, key=ROOT_META.encode("utf-8"),
            before=codec.encode(None), after=codec.encode(root.page_id),
        )
        return cls(client, anchor.page_id, lock_keys=lock_keys)

    @classmethod
    def attach(cls, client: Any, anchor_page_id: int,
               lock_keys: bool = True) -> "BTree":
        """Bind an existing tree (e.g. at another client)."""
        return cls(client, anchor_page_id, lock_keys=lock_keys)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _root_id(self, for_write: bool) -> int:
        fetch = (self.client._ensure_update_privilege if for_write
                 else self.client._get_page)
        anchor = fetch(self.anchor_page_id)
        root_id = anchor.get_meta(ROOT_META)
        if not isinstance(root_id, int) or root_id < 0:
            raise ReproError(
                f"page {self.anchor_page_id} does not anchor a tree"
            )
        return root_id

    def _find_path(self, key: bytes, for_write: bool) -> Tuple[Page, List[Page]]:
        """Descend to the leaf for ``key``; returns (leaf, ancestor path)."""
        fetch = (self.client._ensure_update_privilege if for_write
                 else self.client._get_page)
        page = fetch(self._root_id(for_write))
        path: List[Page] = []
        while not node.is_leaf(page):
            path.append(page)
            page = fetch(node.child_for(page, key))
        return page, path

    def _lock_key(self, txn: Optional[Transaction], key: bytes,
                  mode: LockMode) -> None:
        if txn is None or not self.lock_keys:
            return
        self.client.lock_calls += 1
        self.client.llm.acquire(
            txn.txn_id, ("key", self.anchor_page_id, key), mode
        )

    def search(self, key: KeyLike, txn: Optional[Transaction] = None) -> Optional[Any]:
        """Point lookup; returns the stored value or None."""
        kb = encode_key(key)
        self._lock_key(txn, kb, LockMode.S)
        leaf, _ = self._find_path(kb, for_write=False)
        entry = node.find_leaf_entry(leaf, kb)
        return decode_value(entry.value) if entry is not None else None

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """Full scan in key order via the leaf sibling chain."""
        page = self.client._get_page(self._root_id(False))
        while not node.is_leaf(page):
            entries = node.branch_entries(page)
            page = self.client._get_page(entries[0].child)
        while True:
            for entry in node.leaf_entries(page):
                yield entry.key, decode_value(entry.value)
            sibling = node.next_sibling(page)
            if sibling == node.NO_SIBLING:
                return
            page = self.client._get_page(sibling)

    def range(self, low: Optional[KeyLike] = None,
              high: Optional[KeyLike] = None,
              inclusive_high: bool = False) -> Iterator[Tuple[bytes, Any]]:
        """Scan keys in [low, high) (or [low, high] when inclusive).

        Descends directly to the leaf covering ``low`` and walks the
        sibling chain; unbounded ends scan from the first / to the last
        key.
        """
        low_key = encode_key(low) if low is not None else None
        high_key = encode_key(high) if high is not None else None
        if low_key is None:
            page = self.client._get_page(self._root_id(False))
            while not node.is_leaf(page):
                entries = node.branch_entries(page)
                page = self.client._get_page(entries[0].child)
        else:
            page, _ = self._find_path(low_key, for_write=False)
        while True:
            for entry in node.leaf_entries(page):
                if low_key is not None and entry.key < low_key:
                    continue
                if high_key is not None:
                    if entry.key > high_key:
                        return
                    if entry.key == high_key and not inclusive_high:
                        return
                yield entry.key, decode_value(entry.value)
            sibling = node.next_sibling(page)
            if sibling == node.NO_SIBLING:
                return
            page = self.client._get_page(sibling)

    def keys(self) -> List[bytes]:
        return [key for key, _ in self.items()]

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, key: KeyLike, value: Any) -> None:
        """Insert a unique key (logical-undo logged)."""
        kb = encode_key(key)
        vb = encode_value(value)
        entry_image = node.encode_leaf_entry(kb, vb)
        self._lock_key(txn, kb, LockMode.X)
        leaf, path = self._find_path(kb, for_write=True)
        if node.find_leaf_entry(leaf, kb) is not None:
            raise DuplicateKeyError(key)
        if not leaf.has_room_for(entry_image):
            self._split_leaf(txn, leaf, path)
            leaf, path = self._find_path(kb, for_write=True)
        self.client.apply_logged_update(
            txn, leaf, UpdateOp.INDEX_INSERT, slot=leaf.next_free_slot(),
            after=entry_image, key=encode_index_key(self.anchor_page_id, kb),
        )

    def delete(self, txn: Transaction, key: KeyLike) -> None:
        """Delete a key (logical-undo logged); may free an empty leaf."""
        kb = encode_key(key)
        self._lock_key(txn, kb, LockMode.X)
        leaf, path = self._find_path(kb, for_write=True)
        entry = node.find_leaf_entry(leaf, kb)
        if entry is None:
            raise KeyNotFoundError(key)
        self.client.apply_logged_update(
            txn, leaf, UpdateOp.INDEX_DELETE, slot=entry.slot,
            before=node.encode_leaf_entry(kb, entry.value),
            key=encode_index_key(self.anchor_page_id, kb),
        )
        if leaf.record_count == 0 and path:
            self._free_empty_leaf(txn, leaf, path)

    # ------------------------------------------------------------------
    # Structural modifications (nested top actions)
    # ------------------------------------------------------------------

    def _split_leaf(self, txn: Transaction, leaf: Page, path: List[Page]) -> None:
        """Split a full leaf; the whole SMO is one nested top action."""
        self.splits += 1
        nta = self.client.begin_nested_top_action(txn)
        entries = node.leaf_entries(leaf)
        move = entries[len(entries) // 2:]
        new_leaf = self.client.allocate_page(
            txn, PageKind.INDEX_LEAF,
            initial_meta=[(node.LEVEL_KEY, 0),
                          (node.NEXT_KEY, node.next_sibling(leaf))],
        )
        for entry in move:
            image = node.encode_leaf_entry(entry.key, entry.value)
            self.client.apply_logged_update(
                txn, leaf, UpdateOp.RECORD_DELETE, slot=entry.slot,
                before=image, redo_only=True,
            )
            self.client.apply_logged_update(
                txn, new_leaf, UpdateOp.RECORD_INSERT,
                slot=new_leaf.next_free_slot(), after=image, redo_only=True,
            )
        self._set_meta(txn, leaf, node.NEXT_KEY, new_leaf.page_id)
        separator = move[0].key
        self._insert_separator(txn, path, separator, new_leaf.page_id,
                               split_level=0)
        self.client.end_nested_top_action(txn, nta)

    def _insert_separator(self, txn: Transaction, path: List[Page],
                          separator: bytes, child: int,
                          split_level: int) -> None:
        """Insert (separator -> child) into the parent, splitting upward."""
        image = node.encode_branch_entry(separator, child)
        if not path:
            self._grow_root(txn, separator, child, split_level)
            return
        parent = path[-1]
        if parent.has_room_for(image):
            self.client.apply_logged_update(
                txn, parent, UpdateOp.RECORD_INSERT,
                slot=parent.next_free_slot(), after=image, redo_only=True,
            )
            return
        # Split the internal node, then place the separator on the
        # correct side.
        entries = node.branch_entries(parent)
        move = entries[len(entries) // 2:]
        new_branch = self.client.allocate_page(
            txn, PageKind.INDEX_INTERNAL,
            initial_meta=[(node.LEVEL_KEY, node.level_of(parent))],
        )
        for entry in move:
            entry_image = node.encode_branch_entry(entry.key, entry.child)
            self.client.apply_logged_update(
                txn, parent, UpdateOp.RECORD_DELETE, slot=entry.slot,
                before=entry_image, redo_only=True,
            )
            self.client.apply_logged_update(
                txn, new_branch, UpdateOp.RECORD_INSERT,
                slot=new_branch.next_free_slot(), after=entry_image,
                redo_only=True,
            )
        promoted = move[0].key
        target = new_branch if separator >= promoted else parent
        self.client.apply_logged_update(
            txn, target, UpdateOp.RECORD_INSERT,
            slot=target.next_free_slot(), after=image, redo_only=True,
        )
        self._insert_separator(txn, path[:-1], promoted, new_branch.page_id,
                               split_level=node.level_of(parent))

    def _grow_root(self, txn: Transaction, separator: bytes, right: int,
                   split_level: int) -> None:
        """The root split: a new root above the old one."""
        old_root_id = self._root_id(for_write=True)
        new_root = self.client.allocate_page(
            txn, PageKind.INDEX_INTERNAL,
            initial_meta=[(node.LEVEL_KEY, split_level + 1)],
        )
        for key, child in ((node.LOW_KEY, old_root_id), (separator, right)):
            self.client.apply_logged_update(
                txn, new_root, UpdateOp.RECORD_INSERT,
                slot=new_root.next_free_slot(),
                after=node.encode_branch_entry(key, child), redo_only=True,
            )
        anchor = self.client._ensure_update_privilege(self.anchor_page_id)
        self._set_meta(txn, anchor, ROOT_META, new_root.page_id,
                       redo_only=True)

    def _free_empty_leaf(self, txn: Transaction, leaf: Page,
                         path: List[Page]) -> None:
        """Deallocate an empty leaf — the section 2.3 reuse candidate.

        Performed only when the left sibling lives under the same parent
        (so its sibling pointer can be repaired locally); otherwise the
        empty leaf is simply kept.
        """
        parent = path[-1]
        entries = node.branch_entries(parent)
        index = next(
            (i for i, entry in enumerate(entries) if entry.child == leaf.page_id),
            None,
        )
        if index is None or index == 0:
            return  # leftmost under this parent (or sentinel child): keep it
        nta = self.client.begin_nested_top_action(txn)
        left = self.client._ensure_update_privilege(entries[index - 1].child)
        self._set_meta(txn, left, node.NEXT_KEY, node.next_sibling(leaf))
        doomed = entries[index]
        self.client.apply_logged_update(
            txn, parent, UpdateOp.RECORD_DELETE, slot=doomed.slot,
            before=node.encode_branch_entry(doomed.key, doomed.child),
            redo_only=True,
        )
        self.client.deallocate_page(txn, leaf.page_id)
        self.client.end_nested_top_action(txn, nta)
        self.page_deallocations += 1

    def _set_meta(self, txn: Transaction, page: Page, meta_key: str,
                  value: Any, redo_only: bool = True) -> None:
        before = page.get_meta(meta_key)
        self.client.apply_logged_update(
            txn, page, UpdateOp.META_SET, key=meta_key.encode("utf-8"),
            before=codec.encode(before), after=codec.encode(value),
            redo_only=redo_only,
        )

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    def depth(self) -> int:
        page = self.client._get_page(self._root_id(False))
        depth = 1
        while not node.is_leaf(page):
            page = self.client._get_page(node.branch_entries(page)[0].child)
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Structural sanity: sorted leaf chain, separator coverage."""
        previous: Optional[bytes] = None
        for key, _ in self.items():
            if previous is not None and key <= previous:
                raise ReproError(
                    f"leaf chain out of order: {previous!r} !< {key!r}"
                )
            previous = key
