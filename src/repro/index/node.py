"""B+-tree node layout over slotted pages.

Index pages keep their entries in *slots* (stable identities, so
physical redo replays exactly), not in sorted positions; ordering is
recomputed on access.  Leaf entries are ``(key, value)`` pairs; internal
entries are ``(separator_key, child_page_id)`` pairs where a child
covers keys >= its separator and the first separator is the empty byte
string (a low sentinel).

Page meta keys: ``level`` (0 = leaf), ``next`` (right sibling page id,
-1 = none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import codec
from repro.storage.page import Page, PageKind

LEVEL_KEY = "level"
NEXT_KEY = "next"
NO_SIBLING = -1

#: The low sentinel separator carried by the leftmost entry of every
#: internal node.
LOW_KEY = b""


@dataclass(frozen=True)
class LeafEntry:
    key: bytes
    value: bytes
    slot: int


@dataclass(frozen=True)
class BranchEntry:
    key: bytes
    child: int
    slot: int


def encode_leaf_entry(key: bytes, value: bytes) -> bytes:
    return codec.encode((key, value))


def decode_leaf_entry(image: bytes, slot: int) -> LeafEntry:
    key, value = codec.decode(image)
    return LeafEntry(key=key, value=value, slot=slot)


def encode_branch_entry(key: bytes, child: int) -> bytes:
    return codec.encode((key, child))


def decode_branch_entry(image: bytes, slot: int) -> BranchEntry:
    key, child = codec.decode(image)
    return BranchEntry(key=key, child=child, slot=slot)


def is_leaf(page: Page) -> bool:
    return page.kind is PageKind.INDEX_LEAF


def level_of(page: Page) -> int:
    level = page.get_meta(LEVEL_KEY)
    return level if isinstance(level, int) else 0


def next_sibling(page: Page) -> int:
    sibling = page.get_meta(NEXT_KEY)
    return sibling if isinstance(sibling, int) else NO_SIBLING


def leaf_entries(page: Page) -> List[LeafEntry]:
    """All leaf entries in key order."""
    entries = [decode_leaf_entry(image, slot) for slot, image in page.records()]
    entries.sort(key=lambda entry: entry.key)
    return entries


def branch_entries(page: Page) -> List[BranchEntry]:
    """All branch entries in key order (first is the LOW_KEY sentinel)."""
    entries = [decode_branch_entry(image, slot) for slot, image in page.records()]
    entries.sort(key=lambda entry: entry.key)
    return entries


def find_leaf_entry(page: Page, key: bytes) -> Optional[LeafEntry]:
    for slot, image in page.records():
        entry = decode_leaf_entry(image, slot)
        if entry.key == key:
            return entry
    return None


def child_for(page: Page, key: bytes) -> int:
    """The child covering ``key``: rightmost entry with separator <= key."""
    best: Optional[BranchEntry] = None
    for entry in branch_entries(page):
        if entry.key <= key:
            best = entry
        else:
            break
    if best is None:
        raise ValueError(
            f"internal page {page.page_id} has no child for key {key!r}"
        )
    return best.child
