"""B+-tree access method with logical undo and SMP-backed page reuse."""

from repro.index.btree import BTree, DuplicateKeyError, KeyNotFoundError
from repro.index.keys import decode_int_key, encode_key
from repro.index.undo import (
    decode_index_key,
    encode_index_key,
    logical_undo_effect,
)

__all__ = [
    "BTree",
    "DuplicateKeyError",
    "KeyNotFoundError",
    "decode_index_key",
    "decode_int_key",
    "encode_index_key",
    "encode_key",
    "logical_undo_effect",
]
