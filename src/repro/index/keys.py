"""Key encoding for the B+-tree.

Keys compare as byte strings; these helpers produce order-preserving
encodings for the common application types (ints and strings), so a
tree can be used without thinking about byte order.
"""

from __future__ import annotations

from typing import Union

KeyLike = Union[int, str, bytes]

_INT_WIDTH = 8
_INT_BIAS = 2 ** 63


def encode_key(key: KeyLike) -> bytes:
    """Order-preserving key encoding.

    Ints are biased to unsigned and big-endian packed (so -5 < 3 holds
    bytewise); strings are UTF-8; bytes pass through.  Mixed-type keys
    in one tree are the caller's responsibility.
    """
    if isinstance(key, bool):
        raise TypeError("bool keys are ambiguous; use int 0/1 explicitly")
    if isinstance(key, int):
        return (key + _INT_BIAS).to_bytes(_INT_WIDTH, "big")
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return bytes(key)
    raise TypeError(f"unsupported key type {type(key).__name__}")


def decode_int_key(data: bytes) -> int:
    """Inverse of :func:`encode_key` for int keys."""
    return int.from_bytes(data, "big") - _INT_BIAS
