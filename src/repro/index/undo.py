"""Logical undo for B+-tree operations (sections 1.1.2 and 4.1).

An index insert or delete is undone *logically*: between forward
processing and undo, splits or page deallocations may have moved the key
to a different page, so undo re-traverses the tree and compensates
wherever the key lives *now*.  The CLR then records the actual physical
change made (page, slot, image) — CLRs stay redo-only and page-oriented.

The update record's ``key`` field carries ``codec.encode((anchor_page_id,
key_bytes))`` so that any holder of the log — the client during normal
rollback, or the server during restart / failed-client recovery — can
perform the undo with nothing but page access.  The paper highlights
exactly this ability as what ESM-CS's server-side conditional undo
cannot support.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core import codec
from repro.core.apply import UndoEffect
from repro.core.log_records import UpdateOp, UpdateRecord
from repro.errors import RecoveryInvariantError
from repro.index import node
from repro.storage.page import Page

PageFetch = Callable[[int], Page]

ROOT_META = "root"


def encode_index_key(anchor_page_id: int, key: bytes) -> bytes:
    """The ``key`` payload stored in index update records."""
    return codec.encode((anchor_page_id, key))


def decode_index_key(payload: bytes) -> Tuple[int, bytes]:
    anchor_page_id, key = codec.decode(payload)
    return anchor_page_id, key


def find_leaf(anchor_page_id: int, key: bytes, fetch: PageFetch) -> Page:
    """Traverse from the tree anchor down to the leaf covering ``key``."""
    anchor = fetch(anchor_page_id)
    root_id = anchor.get_meta(ROOT_META)
    if not isinstance(root_id, int):
        raise RecoveryInvariantError(
            f"page {anchor_page_id} is not a tree anchor (no root pointer)"
        )
    page = fetch(root_id)
    guard = 0
    while not node.is_leaf(page):
        page = fetch(node.child_for(page, key))
        guard += 1
        if guard > 64:
            raise RecoveryInvariantError("index traversal did not terminate")
    return page


def logical_undo_effect(record: UpdateRecord, fetch: PageFetch) -> UndoEffect:
    """Compute the compensating change for an index update record.

    Undo of an insert deletes the key from whichever leaf holds it now;
    undo of a delete re-inserts the entry into the covering leaf.  The
    target page can differ from ``record.page_id`` — that is the point.
    """
    if record.key is None:
        raise RecoveryInvariantError(
            f"index record {record.lsn} lacks a logical key"
        )
    anchor_page_id, key = decode_index_key(record.key)
    leaf = find_leaf(anchor_page_id, key, fetch)
    if record.op is UpdateOp.INDEX_INSERT:
        entry = node.find_leaf_entry(leaf, key)
        if entry is None:
            raise RecoveryInvariantError(
                f"undo of index insert: key {key!r} not found in tree "
                f"anchored at {anchor_page_id}"
            )
        return UndoEffect(
            page_id=leaf.page_id, op=UpdateOp.INDEX_DELETE,
            slot=entry.slot, after=None, key=record.key,
        )
    if record.op is UpdateOp.INDEX_DELETE:
        if record.before is None:
            raise RecoveryInvariantError(
                f"index delete record {record.lsn} lacks a before-image"
            )
        if not leaf.has_room_for(record.before):
            raise RecoveryInvariantError(
                f"undo of index delete: leaf {leaf.page_id} has no room "
                f"to re-insert key {key!r} (split-during-undo is not "
                "implemented; see DESIGN.md simplifications)"
            )
        return UndoEffect(
            page_id=leaf.page_id, op=UpdateOp.INDEX_INSERT,
            slot=leaf.next_free_slot(), after=record.before, key=record.key,
        )
    raise RecoveryInvariantError(
        f"record {record.lsn} ({record.op}) is not an index operation"
    )
