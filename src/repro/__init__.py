"""repro — a full reproduction of ARIES/CSA (Mohan & Narang, SIGMOD 1994).

ARIES/CSA extends the ARIES recovery method to client-server database
architectures: the server owns the disks (database and a single log);
clients cache and update pages, assign LSNs locally, buffer log records
in virtual storage, and ship them to the server.  The method supports
write-ahead logging, fine-granularity (record) locking, steal/no-force
buffer management, partial rollbacks, client and coordinated server
checkpoints, server-performed recovery of failed clients, and the
Commit_LSN optimization — all implemented here over a simulated complex
with precise volatile/stable crash semantics.

Quickstart::

    from repro import ClientServerSystem, RecordId

    system = ClientServerSystem(client_ids=["C1"])
    system.bootstrap(data_pages=8)
    system.create_table("accounts", 8)
    client = system.client("C1")

    txn = client.begin()
    rid = client.insert(txn, page_id=1, value=("alice", 100))
    client.commit(txn)

    system.crash_all()
    system.restart_all()
    assert system.server_visible_value(rid) == ("alice", 100)
"""

from repro.config import (
    ClientRecoveryInfo,
    CommitCachePolicy,
    CommitPagePolicy,
    LockGranularity,
    LsnAssignment,
    RollbackSite,
    SystemConfig,
)
from repro.core.client import Client
from repro.core.coordinator import TwoPhaseCoordinator
from repro.core.server import RecoveryReport, Server
from repro.core.system import ClientServerSystem
from repro.core.transaction import Transaction, TxnState
from repro.errors import ReproError
from repro.records.heap import RecordId

__version__ = "1.0.0"

__all__ = [
    "Client",
    "ClientRecoveryInfo",
    "ClientServerSystem",
    "CommitCachePolicy",
    "CommitPagePolicy",
    "LockGranularity",
    "LsnAssignment",
    "RecordId",
    "RecoveryReport",
    "ReproError",
    "RollbackSite",
    "Server",
    "SystemConfig",
    "Transaction",
    "TwoPhaseCoordinator",
    "TxnState",
    "__version__",
]
