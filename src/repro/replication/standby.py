"""The warm standby: a log replica, a page replica, and an apply loop.

A :class:`StandbyServer` is deliberately *not* a :class:`Server`: it
serves no pages, grants no locks, runs no transactions.  It owns three
replicas and the bookkeeping to promote them:

* a **log replica** (:class:`~repro.core.server_log.ServerLogManager`)
  whose addresses are byte-identical to the primary's — every shipped
  frame is appended at the address the primary assigned and the parity
  is asserted per record;
* a **page replica** (:class:`~repro.storage.disk.Disk`) rolled forward
  by the apply loop every ``SystemConfig.standby_apply_interval`` shipped
  records, so promotion redoes only the unapplied tail;
* a :class:`~repro.core.commit_lsn.GlobalTransactionTracker` fed with
  every shipped record, so the promoted server knows each in-flight
  transaction without rescanning the log.

Durability model: the forced log prefix, the disk images, and the
``master`` dict (the stable master record's replica, including the
standby-private ``standby_ship_hw`` / ``standby_applied_addr`` keys and
the shipped dedup entries) survive a standby crash; everything else is
rebuilt by :meth:`StandbyServer.recover` from a single replica-log scan.

Every durable write funnels through the apply-seam methods
(:meth:`_append_frame`, :meth:`_append_checkpoint`,
:meth:`_install_page`, :meth:`install_bootstrap`) — lint rule REP001
pins this, because a durable write outside the seam is exactly how a
replica silently diverges from its primary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.apply import apply_clr_redo, apply_redo, redo_needed
from repro.core.commit_lsn import GlobalTransactionTracker
from repro.core.log_records import (
    BeginCheckpointRecord,
    DirtyPageEntry,
    EndCheckpointRecord,
    LogRecord,
    SERVER_ID,
    TxnTableEntry,
)
from repro.core.lsn import LogAddr, NULL_ADDR, NULL_LSN
from repro.core.server_log import ServerLogManager
from repro.errors import (
    NodeUnavailableError,
    PageNotFoundError,
    ReplicationError,
)
from repro.net.rpc import Response, RpcDispatcher
from repro.replication.stream import STANDBY_ID, ShipBatch
from repro.storage.disk import Disk
from repro.storage.page import Page, PageKind

if TYPE_CHECKING:
    from repro.faults import FaultPlan
    from repro.obs.tracer import Tracer
    from repro.replication.manager import ReplicationManager


class StandbyServer:
    """Receives the ship stream; applies it; can be promoted."""

    node_id = STANDBY_ID

    def __init__(self, manager: "ReplicationManager") -> None:
        self.manager = manager
        self.config = manager.config
        self.network = manager.network
        self.log = ServerLogManager(0)
        self.disk = Disk()
        self.tracker = GlobalTransactionTracker()
        #: Master-record replica; refreshed by every batch, plus the
        #: standby-private keys (ship high-water, applied boundary,
        #: shipped dedup entries) that make :meth:`recover` possible.
        self.master: Dict[str, Any] = {
            "server_ckpt_begin_addr": NULL_ADDR,
            "client_ckpts": {},
            "standby_ship_hw": 0,
            "standby_applied_addr": 0,
        }
        #: Everything below ``applied_addr`` is materialized in the page
        #: replica; the tail above it is durable in the log replica only.
        self.applied_addr: LogAddr = 0
        #: Page id -> address of its first unapplied redoable record:
        #: the promotion checkpoint's dirty page list.
        self._unapplied: Dict[int, LogAddr] = {}
        #: Shipped dedup entries, accumulated for the promoted server's
        #: dispatcher.  Durable alongside the master (the simulation's
        #: stand-in for persisting them with the ship stream).
        self._dedup: List[Tuple[Tuple[str, int], Response]] = []
        self.crashed = False
        self.network.register(self.node_id)
        self.dispatcher = RpcDispatcher(self.node_id)
        self.dispatcher.register("replicate_batch", self.receive_batch)
        self.dispatcher.register("replication_heartbeat",
                                 lambda sender: True)
        self.network.attach(self.node_id, self.dispatcher)

    # Observability planes are read through the manager so a plane
    # attached to the complex after construction is seen immediately.

    @property
    def tracer(self) -> Optional["Tracer"]:
        return self.manager.tracer

    @property
    def faults(self) -> Optional["FaultPlan"]:
        return self.manager.faults

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def install_bootstrap(self, base_addr: LogAddr, pages: List[Page],
                          master: Dict[str, Any]) -> None:
        """(Re)build the replicas from a primary snapshot.

        ``base_addr`` is the primary's log low-water mark: the replica
        log opens empty at that address so shipped frames land at their
        primary-assigned offsets.  ``pages`` are the primary's current
        disk images — they cover every update below ``base_addr``
        (truncation never discards a record a dirty page still needs),
        so applying the shipped tail on top yields the primary's state.
        """
        self.log = ServerLogManager(0)
        self.log.stable.open_at(base_addr)
        self.disk = Disk()
        for page in pages:
            self._install_page(page)
        self.tracker = GlobalTransactionTracker()
        self._unapplied = {}
        self._dedup = []
        self.applied_addr = base_addr
        fresh = dict(master)
        fresh["client_ckpts"] = dict(master["client_ckpts"])
        fresh["standby_ship_hw"] = base_addr
        fresh["standby_applied_addr"] = base_addr
        self.master = fresh
        self.crashed = False

    # ------------------------------------------------------------------
    # The ship stream (RPC handler)
    # ------------------------------------------------------------------

    def receive_batch(self, sender: str, batch: ShipBatch) -> LogAddr:
        """Append one shipped batch durably; returns the ack high-water.

        The ack (the replica's flushed address) is only sent after the
        frames are forced and the master/dedup soft state installed, so
        an acknowledged byte can never be lost by a standby crash — the
        half of the failover durability oracle the standby owns.
        """
        if self.crashed:
            raise NodeUnavailableError(self.node_id)
        faults = self.faults
        if faults is not None:
            faults.crashpoint("replication.ship.before_append", self.tracer)
        for addr, record in batch.frames:
            end = self.log.end_of_log_addr
            if addr < end:
                # Re-shipped after a lost ack: already durable here.
                continue
            if addr > end:
                raise ReplicationError(
                    f"ship gap: expected next frame at {end}, got {addr}"
                )
            self._append_frame(addr, record)
        self.log.force()
        self._install_master(batch.master)
        self._dedup.extend(batch.dedup)
        if faults is not None:
            faults.crashpoint("replication.ship.before_ack", self.tracer)
        self._maybe_apply()
        return self.log.flushed_addr

    def _append_frame(self, addr: LogAddr, record: LogRecord) -> None:
        """Apply seam: one shipped frame into the log replica."""
        if record.client_id == SERVER_ID:
            assigned = self.log.append_local(record)
        else:
            # Client-attributed records (including server-written CLRs
            # for failed clients) feed the per-client pair lists, just
            # as arrival at the primary did; the slightly larger
            # ForceAddr this gives server-written CLRs is conservative.
            (_lsn, assigned), = self.log.append_from_client(
                record.client_id, [record])
        if assigned != addr:
            raise ReplicationError(
                f"address divergence: primary assigned {addr}, "
                f"replica assigned {assigned}"
            )
        self._observe(addr, record)

    def _observe(self, addr: LogAddr, record: LogRecord) -> None:
        """Volatile bookkeeping for one replica-log record."""
        self.tracker.observe(record, addr)
        if record.is_redoable() and record.page_id >= 0 \
                and record.page_id not in self._unapplied:
            self._unapplied[record.page_id] = addr

    def _install_master(self, master: Dict[str, Any]) -> None:
        fresh = dict(master)
        fresh["client_ckpts"] = dict(master["client_ckpts"])
        fresh["standby_applied_addr"] = self.master.get(
            "standby_applied_addr", self.applied_addr)
        fresh["standby_ship_hw"] = self.log.flushed_addr
        self.master = fresh

    def shipped_dedup(self) -> List[Tuple[Tuple[str, int], Response]]:
        """The accumulated dedup entries, for the promoted dispatcher."""
        return list(self._dedup)

    @property
    def ship_high_water(self) -> LogAddr:
        """Last address the standby durably acknowledged."""
        return self.master.get("standby_ship_hw", 0)

    # ------------------------------------------------------------------
    # The apply loop
    # ------------------------------------------------------------------

    def _maybe_apply(self) -> None:
        interval = max(1, self.config.standby_apply_interval)
        pending = self.log.stable.records_between(self.applied_addr,
                                                  self.log.flushed_addr)
        if pending >= interval:
            self.apply_tail()

    def apply_tail(self, up_to: Optional[LogAddr] = None) -> int:
        """Redo the shipped tail into the page replica; returns redo count.

        Standard ARIES redo applicability: a record applies iff the
        page's page_LSN is below the record's LSN, so re-applying after
        a crash (``applied_addr`` restored from the master, some pages
        already written) is idempotent.  Pages missing from the replica
        materialize as empty frames — their format records initialize
        them, exactly as in restart redo.
        """
        target = self.log.flushed_addr if up_to is None else up_to
        if target <= self.applied_addr:
            return 0
        faults = self.faults
        if faults is not None:
            faults.crashpoint("replication.apply.before_redo", self.tracer)
        pages: Dict[int, Page] = {}
        applied = 0
        for addr, record in self.log.scan(self.applied_addr, target):
            if not record.is_redoable() or record.page_id < 0:
                continue
            page = pages.get(record.page_id)
            if page is None:
                page = self._fetch_page(record.page_id)
                pages[record.page_id] = page
            if not redo_needed(page, record.lsn):
                continue
            if record.is_clr():
                apply_clr_redo(page, record)
            else:
                apply_redo(page, record)
            applied += 1
        for page_id in sorted(pages):
            self._install_page(pages[page_id])
        self.applied_addr = target
        self._unapplied = {
            page_id: first_addr
            for page_id, first_addr in self._unapplied.items()
            if first_addr >= target
        }
        self.master["standby_applied_addr"] = target
        self.manager.note_applied(applied)
        return applied

    def _fetch_page(self, page_id: int) -> Page:
        try:
            return self.disk.read_page(page_id)
        except PageNotFoundError:
            return Page(page_id, PageKind.FREE, self.config.page_size)

    def _install_page(self, page: Page) -> None:  # lint: allow[WAL100,REC030,REC040] replica install: applies only the forced ship prefix
        """Apply seam: one page image into the page replica.

        No WAL check is needed here: the apply loop only materializes
        records from the *forced* replica prefix (and bootstrap installs
        snapshots of already-durable primary pages), so the log always
        precedes the page by construction.  Crash coverage comes from
        the ship/apply crashpoints around the seam, not per write.
        """
        # lint: allow[REC002,REC030] standby apply: redoes only forced records
        self.disk.write_page(page)

    # ------------------------------------------------------------------
    # Promotion support
    # ------------------------------------------------------------------

    def promotion_checkpoint(self) -> LogAddr:
        """Append a checkpoint synthesized from ship-time bookkeeping.

        The promoted server's analysis pass starts here instead of at
        the last shipped coordinated checkpoint: the dirty page list is
        exactly the unapplied-tail map and the transaction table is the
        tracker's in-progress view, both maintained record by record as
        the stream arrived.  This is why promotion's analysis scan is a
        handful of records regardless of history length.
        """
        begin = BeginCheckpointRecord(
            lsn=self.log.clock.next_lsn(NULL_LSN), client_id=SERVER_ID,
            txn_id=None, prev_lsn=NULL_LSN, owner=SERVER_ID,
        )
        begin_addr = self._append_checkpoint(begin)
        dirty = tuple(
            DirtyPageEntry(page_id=page_id, rec_lsn=NULL_LSN,
                           rec_addr=rec_addr)
            for page_id, rec_addr in sorted(self._unapplied.items())
        )
        txns = tuple(
            TxnTableEntry(
                txn_id=txn.txn_id, client_id=txn.client_id, state=txn.state,
                last_lsn=txn.last_lsn, undo_next_lsn=txn.undo_next_lsn,
                first_lsn=txn.first_lsn,
            )
            for txn in sorted(self.tracker.in_progress(),
                              key=lambda txn: txn.txn_id)
        )
        end = EndCheckpointRecord(
            lsn=self.log.clock.next_lsn(NULL_LSN), client_id=SERVER_ID,
            txn_id=None, prev_lsn=begin.lsn, owner=SERVER_ID,
            dirty_pages=dirty, transactions=txns,
        )
        end_addr = self._append_checkpoint(end)
        self.log.force(end_addr)
        self.master["server_ckpt_begin_addr"] = begin_addr
        return begin_addr

    def _append_checkpoint(self, record: LogRecord) -> LogAddr:
        """Apply seam: one standby-originated checkpoint record."""
        return self.log.append_local(record)

    # ------------------------------------------------------------------
    # Crash model
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """The standby process dies mid-stream or mid-promotion.

        The forced log prefix, the disk images and the master replica
        survive; the unforced tail, the tracker and the unapplied map
        vanish with the process.
        """
        self.log.crash()
        self.tracker.clear()
        self._unapplied.clear()
        self.crashed = True

    def recover(self) -> None:
        """Rebuild volatile bookkeeping from the durable replicas.

        One forward scan of the retained replica log re-feeds the
        tracker and the per-client pair lists; the applied boundary
        comes back from the master, and the unapplied map is rebuilt
        from the records above it.
        """
        self.crashed = False
        self.applied_addr = self.master.get(
            "standby_applied_addr", self.log.stable.low_water_addr)
        for addr, record in self.log.scan():
            self.log.observe_during_restart(record.client_id,
                                            record.lsn, addr)
            self.log.clock.observe_lsn(record.lsn)
            if addr >= self.applied_addr:
                self._observe(addr, record)
            else:
                self.tracker.observe(record, addr)
