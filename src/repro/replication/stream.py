"""Ship-stream framing: what travels primary -> standby (DESIGN §15).

One :class:`ShipBatch` carries a contiguous run of *stable* log frames,
each tagged with the address the primary's log assigned it.  Addresses
are byte offsets (``StableLog.append`` returns ``base + len(buf)``), so
replaying the frames in order onto a replica log opened at the same base
reproduces the primary's address space byte for byte — the property
every shipped RecAddr, checkpoint pointer and master-record field relies
on.  The standby asserts this parity on every append and treats any
divergence as a protocol violation.

The batch also piggybacks two pieces of soft state:

* the primary's **master record** snapshot, so a promoted standby can
  start analysis from the last coordinated checkpoint it shipped;
* the primary dispatcher's freshly **completed-response entries**, so a
  client whose acknowledgement was lost can retry the same envelope
  against the promoted standby without re-executing the handler
  (exactly-once across the failover boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.core.log_records import LogRecord
from repro.core.lsn import LogAddr

#: Node id of the warm standby (the promoted server keeps it, so the
#: fenced old primary's id stays distinct on the network).
STANDBY_ID = "STANDBY"


@dataclass(frozen=True)
class ShipBatch:
    """One primary -> standby ship: a stable frame run plus soft state.

    ``frames`` covers addresses ``[start_addr, end_addr)``; an empty
    run (dedup-only batch) has ``start_addr == end_addr``.  Re-shipping
    a previously acknowledged prefix is legal — the standby skips frames
    below its end of log — which is what makes a lost ack harmless.
    """

    #: First shipped frame's address (== the shipper's high-water mark).
    start_addr: LogAddr
    #: Exclusive upper bound: the primary's flushed address at ship time.
    end_addr: LogAddr
    #: The stable frames, in address order: ``(addr, record)`` pairs.
    frames: Tuple[Tuple[LogAddr, LogRecord], ...]
    #: Snapshot of the primary's master record (checkpoint anchors).
    master: Dict[str, Any]
    #: Completed-response entries drained from the primary dispatcher's
    #: tap: ``((sender, request_id), response)`` pairs.
    dedup: Tuple[Tuple[Tuple[str, int], Any], ...]

    @property
    def record_count(self) -> int:
        return len(self.frames)
