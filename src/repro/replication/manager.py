"""Ship scheduling, failure detection, and the failover state machine.

:class:`ReplicationManager` is the control plane of DESIGN §15.  It
lives beside the complex (``system.replication``) and moves through
three states:

``follower``
    The standby trails the primary.  The primary's log-service hooks
    (:meth:`on_log_appended`, :meth:`on_commit_force`) trigger ships of
    the stable, unshipped log tail; with
    ``SystemConfig.replication_sync_commit`` the commit-path ship is
    synchronous, so a commit acknowledgement implies standby
    durability — the failover durability oracle's premise.

``candidate``
    The heartbeat detector (:meth:`tick`) missed
    ``heartbeat_miss_threshold`` consecutive probes plus a seeded
    jittered slack: the primary is suspected dead and promotion starts.

``primary``
    :meth:`promote` fenced the old primary (pinned at the pre-bump
    epoch, every later envelope from it rejected with
    :class:`~repro.net.rpc.StaleEpochError`), built a fresh
    :class:`~repro.core.server.Server` around the standby's replicas,
    and rolled the unapplied tail forward through the configured
    recovery engine.  Clients are repointed; the complex runs on.

A promotion attempt that dies at a crashpoint is retried by calling
:meth:`promote` again: the standby process "restarts" (volatile
bookkeeping rebuilt from its durable replicas) and every step re-runs
idempotently — fencing is guarded, the checkpoint is re-synthesized,
and redo applicability makes re-applied pages a no-op.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core.lsn import LogAddr
from repro.core.server import RecoveryReport, Server
from repro.errors import NodeUnavailableError, ReplicationError
from repro.net.messages import MsgType
from repro.net.rpc import (
    Envelope,
    MessageDroppedError,
    Response,
    StaleEpochError,
)
from repro.replication.standby import StandbyServer
from repro.replication.stream import ShipBatch

if TYPE_CHECKING:
    from repro.core.system import ClientServerSystem
    from repro.faults import FaultPlan
    from repro.obs.hist import MetricsHub
    from repro.obs.tracer import Tracer


class ReplicationManager:
    """Warm-standby control plane: ship, detect, fence, promote."""

    def __init__(self, system: "ClientServerSystem") -> None:
        self.system = system
        self.config = system.config
        self.network = system.network
        self.primary = system.server
        self.state = "follower"
        #: Last address the standby durably acknowledged.
        self.ship_hw: LogAddr = 0

        # Counters (registered in repro.obs.registry).
        self.frames_shipped = 0
        self.ship_acks = 0
        self.records_applied = 0
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0
        self.failovers = 0
        #: Logical ticks from first suspicion to completed takeover.
        self.failover_ticks = 0

        # Failure-detector state.
        self._tick = 0
        self._misses = 0
        self._suspect_tick: Optional[int] = None
        self._suspicion_limit: Optional[float] = None
        #: Seeded jitter stream: same seed -> same detection tick.
        self._rng = random.Random(f"{self.config.seed}:replication")

        self._promotion_attempted = False
        self.promoted: Optional[Server] = None
        self.old_primary: Optional[Server] = None
        #: The promotion restart's RecoveryReport (benchmarks read it).
        self.last_promotion_report: Optional[RecoveryReport] = None

        #: Dispatcher tap: completed responses accumulate here between
        #: ships, then ride the next batch to the standby.
        self._dedup_tap: List[Tuple[Tuple[str, int], Response]] = []
        self.primary.replication = self
        self.primary.dispatcher.completed_tap = self._dedup_tap
        self.primary.dispatcher.register("replication_heartbeat",
                                         lambda sender: True)
        self.standby = StandbyServer(self)

    # Observability planes are read off the complex so late attachment
    # (system.attach_tracer after construction) is seen immediately.

    @property
    def tracer(self) -> Optional["Tracer"]:
        return self.system.tracer

    @property
    def faults(self) -> Optional["FaultPlan"]:
        return self.system.faults

    @property
    def metrics(self) -> Optional["MetricsHub"]:
        return self.system.metrics

    def note_applied(self, count: int) -> None:
        """The standby's apply loop materialized ``count`` records."""
        self.records_applied += count

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def bootstrap_standby(self) -> LogAddr:
        """(Re)seed the standby from the primary and ship the log tail.

        Called at attach time and again after offline bootstrap
        (``ClientServerSystem.bootstrap`` formats pages without logging,
        so the page snapshot must be retaken).  The replica log opens at
        the primary's low-water mark; everything stable above it ships
        immediately.
        """
        primary = self.primary
        base = primary.log.stable.low_water_addr
        pages = [primary.disk.read_page(page_id)
                 for page_id in sorted(primary.disk.page_ids())]
        self.standby.install_bootstrap(base, pages,
                                       primary.master_snapshot())
        self.ship_hw = base
        self.ship()
        return base

    # ------------------------------------------------------------------
    # Shipping (follower state)
    # ------------------------------------------------------------------

    def on_log_appended(self) -> None:
        """Primary hook: new records may be stable; ship opportunistically.

        An unreachable standby only widens ship lag here — the
        synchronous durability guarantee is enforced at commit force.
        """
        if self.state != "follower":
            return
        try:
            self.ship()
        except NodeUnavailableError:
            pass

    def on_commit_force(self, flushed: LogAddr) -> None:
        """Primary hook: a commit force completed; ship its records.

        With ``replication_sync_commit`` a failed ship propagates — the
        commit is *not* acknowledged unless the standby holds it, which
        is exactly the invariant the failover durability oracle checks.
        """
        if self.state != "follower":
            return
        if self.config.replication_sync_commit:
            self.ship()
        else:
            try:
                self.ship()
            except NodeUnavailableError:
                pass

    def ship(self) -> LogAddr:
        """Ship the stable unshipped tail (plus dedup soft state) now."""
        if self.state != "follower":
            return self.ship_hw
        primary = self.primary
        target = primary.log.flushed_addr
        frames = tuple(primary.log.scan(self.ship_hw, target))
        if not frames and not self._dedup_tap:
            return self.ship_hw
        faults = self.faults
        if faults is not None:
            faults.crashpoint("replication.ship.before_send", self.tracer)
        dedup = tuple(self._dedup_tap)
        del self._dedup_tap[:]
        batch = ShipBatch(
            start_addr=self.ship_hw, end_addr=target, frames=frames,
            master=primary.master_snapshot(), dedup=dedup,
        )
        stub = self.network.stub(primary.node_id, self.standby.node_id)
        try:
            ack = stub.call("replicate_batch", MsgType.LOG_SHIP,
                            payload=batch.frames, args=(batch,))
        except BaseException:
            # The entries may never have reached the standby; requeue
            # them ahead of anything tapped meanwhile so order is
            # preserved (a duplicate re-ship is harmless — same key,
            # same response).
            self._dedup_tap[:0] = list(dedup)
            raise
        self.ship_hw = ack
        self.frames_shipped += len(frames)
        self.ship_acks += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.ship_lag_records.observe(
                primary.log.stable.records_between(
                    ack, primary.log.end_of_log_addr))
        return ack

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    def tick(self) -> bool:
        """One simulated tick of the failure detector.

        Every ``heartbeat_interval`` ticks the detector probes the
        primary once (unretried — a miss *is* the signal).  After
        ``heartbeat_miss_threshold`` consecutive misses plus a seeded
        jittered slack it turns candidate and promotes.  Returns True
        on the tick that completes a failover.
        """
        if self.state == "primary":
            return False
        self._tick += 1
        interval = max(1, self.config.heartbeat_interval)
        if self._tick % interval != 0:
            return False
        if self._probe_primary():
            self._misses = 0
            self._suspect_tick = None
            self._suspicion_limit = None
            return False
        self.heartbeats_missed += 1
        self._misses += 1
        if self._suspect_tick is None:
            self._suspect_tick = self._tick
            threshold = float(self.config.heartbeat_miss_threshold)
            self._suspicion_limit = threshold + self._rng.uniform(
                0.0, self.config.heartbeat_jitter * threshold)
        assert self._suspicion_limit is not None
        if self._misses >= self._suspicion_limit:
            self.state = "candidate"
            if self.tracer is not None:
                self.tracer.instant(
                    "failover", "suspected", self.standby.node_id,
                    misses=self._misses, tick=self._tick)
            suspect_tick = self._suspect_tick
            self.promote()
            self.failover_ticks += self._tick - suspect_tick + 1
            return True
        return False

    def _probe_primary(self) -> bool:
        """One unretried heartbeat exchange standby -> primary."""
        self.heartbeats_sent += 1
        envelope = Envelope(
            request_id=self.network.next_request_id(),
            src=self.standby.node_id, dst=self.primary.node_id,
            msg_type=MsgType.ACK, method="replication_heartbeat",
            payload=None, args=(),
            epoch=self.network.epoch_for(self.standby.node_id),
        )
        try:
            response = self.network.call(envelope)
        except (NodeUnavailableError, MessageDroppedError):
            return False
        return response.ok

    def run_failover(self, max_ticks: int = 1000) -> Server:
        """Drive detector ticks until a failover completes."""
        for _ in range(max_ticks):
            if self.tick():
                assert self.promoted is not None
                return self.promoted
        raise ReplicationError(
            f"no failover completed within {max_ticks} ticks"
        )

    # ------------------------------------------------------------------
    # Promotion (candidate -> primary)
    # ------------------------------------------------------------------

    def promote(self) -> RecoveryReport:
        """Fence the old primary and promote the standby.

        The sequence, each step idempotent so a crashed attempt can be
        re-run from the top:

        1. fence the old primary at the pre-bump epoch, bump the
           cluster epoch (guarded: a retry must not re-pin at the
           *current* epoch, which would unfence the old primary);
        2. append the promotion checkpoint to the replica log;
        3. build a fresh :class:`Server` on the standby's node id,
           adopt the replicas, install the shipped dedup entries,
           repoint every client;
        4. restart over the replica: survivors replay against the ship
           high-water (not the replica's flushed address, which the
           promotion checkpoint overshot), analysis starts at the
           promotion checkpoint, and redo covers only the unapplied
           tail — the reason promotion beats a cold restart.
        """
        tracer = self.tracer
        faults = self.faults
        span = 0
        if tracer is not None:
            span = tracer.begin(
                "failover", "promote", self.standby.node_id,
                retry=self._promotion_attempted,
            )
        if self._promotion_attempted:
            # A previous attempt died mid-promotion: the standby process
            # restarts, losing volatile bookkeeping but not its replicas.
            self.standby.crash()
            self.standby.recover()
        self._promotion_attempted = True
        old = self.primary
        if faults is not None:
            faults.crashpoint("replication.promote.before_fence", tracer)
        if not self.network.is_fenced(old.node_id):
            self.network.fence(old.node_id)
            self.network.bump_epoch()
            if tracer is not None:
                tracer.instant("failover", "fenced", self.standby.node_id,
                               old_primary=old.node_id,
                               epoch=self.network.cluster_epoch)
        if faults is not None:
            faults.crashpoint("replication.promote.before_checkpoint",
                              tracer)
        self.standby.promotion_checkpoint()
        boundary = self.standby.ship_high_water
        if faults is not None:
            faults.crashpoint("replication.promote.before_restart", tracer)
        new_server = Server(self.config, self.network,
                            node_id=self.standby.node_id)
        new_server.adopt_replica_state(
            self.standby.log, self.standby.disk, self.standby.tracker,
            self.standby.master,
        )
        new_server.tracker.table_resolver = old.tracker.table_resolver
        new_server.dispatcher.install_completed(self.standby.shipped_dedup())
        new_server.dispatcher.register("replication_heartbeat",
                                       lambda sender: True)
        system = self.system
        for client_id in sorted(system.clients):
            client = system.clients[client_id]
            client.repoint_server(new_server)
            new_server.connect_client(client)
        system.server = new_server
        if system.tracer is not None:
            system.attach_tracer(system.tracer)
        if system.metrics is not None:
            system.attach_metrics(system.metrics)
        if system.sanitizer is not None:
            system.attach_sanitizer(system.sanitizer)
        if system.faults is not None:
            system.attach_faults(system.faults)
        report = new_server.restart(
            survivor_boundary=boundary, log_bookkeeping_intact=True)
        self.state = "primary"
        self.failovers += 1
        self.old_primary = old
        self.promoted = new_server
        self.last_promotion_report = report
        old.replication = None
        old.dispatcher.completed_tap = None
        if tracer is not None:
            tracer.end(span, engine=report.engine,
                       records=report.total_log_records_processed)
        return report

    def stale_primary_probe(self) -> bool:
        """Restore the fenced old primary and verify the fence holds.

        The restored node still stamps the epoch it was fenced at, so
        delivery must reject its envelope with
        :class:`~repro.net.rpc.StaleEpochError` before any handler
        runs.  Returns True when the fence rejected the probe.
        """
        old = self.old_primary
        if old is None or self.promoted is None:
            raise ReplicationError("no failover has happened yet")
        self.network.restore(old.node_id)
        envelope = Envelope(
            request_id=self.network.next_request_id(),
            src=old.node_id, dst=self.promoted.node_id,
            msg_type=MsgType.ACK, method="replication_heartbeat",
            payload=None, args=(),
            epoch=self.network.epoch_for(old.node_id),
        )
        try:
            self.network.call(envelope)
        except StaleEpochError:
            return True
        return False
