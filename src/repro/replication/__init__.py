"""Log-shipped warm standby, failure detection, and fenced failover.

DESIGN §15.  The primary ships every durable log frame — addresses
included — to a :class:`~repro.replication.standby.StandbyServer` over
the typed RPC transport; a heartbeat failure detector watches the
primary; and :class:`~repro.replication.manager.ReplicationManager`
drives the follower → candidate → primary state machine that fences the
old primary behind a bumped cluster epoch and promotes the standby by
rolling forward only its unapplied log tail.
"""

from repro.replication.manager import ReplicationManager
from repro.replication.standby import StandbyServer
from repro.replication.stream import STANDBY_ID, ShipBatch

__all__ = [
    "ReplicationManager",
    "ShipBatch",
    "StandbyServer",
    "STANDBY_ID",
]
