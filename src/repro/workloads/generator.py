"""Synthetic workloads: the transaction mixes the paper's setting implies.

The paper motivates CS caching with CAD/CASE-style clients (long
sessions over a private working set) and contrasts commit policies whose
costs depend on write-set size (debit-credit style short transactions).
This module generates both, as *programs*: lists of operations the
cooperative scheduler (or a simple sequential runner) feeds to clients.

Operations are tuples:

* ``("read", rid)``
* ``("update", rid, value)``
* ``("insert", page_id, value)``
* ``("delete", rid)``
* ``("savepoint", name)`` / ``("rollback_to", name)``
* ``("commit",)`` / ``("abort",)`` — exactly one terminator per program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.system import ClientServerSystem
from repro.records.heap import RecordId

Op = Tuple[Any, ...]
Program = List[Op]


def seed_table(system: ClientServerSystem, client_id: str, table: str,
               pages: int, records_per_page: int,
               value_of=lambda i: ("init", i)) -> List[RecordId]:
    """Create a table and populate it with committed records.

    Returns the RecordIds, page-major.  Seeding runs as ordinary
    committed transactions at ``client_id`` (one per page, to keep the
    seeding transactions small).
    """
    page_ids = system.create_table(table, pages)
    client = system.client(client_id)
    rids: List[RecordId] = []
    counter = 0
    for page_id in page_ids:
        txn = client.begin()
        for _ in range(records_per_page):
            rids.append(client.insert(txn, page_id, value_of(counter)))
            counter += 1
        client.commit(txn)
    return rids


@dataclass
class WorkloadSpec:
    """Parameters for a random update/read transaction mix."""

    num_txns: int = 50
    ops_per_txn: int = 8
    read_fraction: float = 0.5
    abort_fraction: float = 0.0
    #: 0.0 = uniform access; higher values skew toward low rid indexes
    #: (a simple Zipf-like bias without scipy dependence in the hot path).
    skew: float = 0.0
    seed: int = 7
    value_prefix: str = "v"


def _pick_index(rng: random.Random, n: int, skew: float) -> int:
    if skew <= 0.0:
        return rng.randrange(n)
    # Inverse-power sampling: u^(1+skew) biases toward 0.
    u = rng.random() ** (1.0 + skew)
    return min(int(u * n), n - 1)


def generate_programs(spec: WorkloadSpec,
                      rids: Sequence[RecordId]) -> List[Program]:
    """Random read/update programs over the given records."""
    rng = random.Random(spec.seed)
    programs: List[Program] = []
    for txn_index in range(spec.num_txns):
        program: Program = []
        for op_index in range(spec.ops_per_txn):
            rid = rids[_pick_index(rng, len(rids), spec.skew)]
            if rng.random() < spec.read_fraction:
                program.append(("read", rid))
            else:
                value = f"{spec.value_prefix}-{txn_index}-{op_index}"
                program.append(("update", rid, value))
        terminator = ("abort",) if rng.random() < spec.abort_fraction \
            else ("commit",)
        program.append(terminator)
        programs.append(program)
    return programs


def debit_credit_programs(num_txns: int, rids: Sequence[RecordId],
                          write_set_size: int, seed: int = 11) -> List[Program]:
    """Short update transactions touching ``write_set_size`` distinct
    pages each — the commit-policy stress of experiment E1."""
    rng = random.Random(seed)
    by_page: dict = {}
    for rid in rids:
        by_page.setdefault(rid.page_id, []).append(rid)
    pages = sorted(by_page)
    programs: List[Program] = []
    for txn_index in range(num_txns):
        chosen_pages = rng.sample(pages, min(write_set_size, len(pages)))
        program: Program = []
        for page_id in chosen_pages:
            rid = rng.choice(by_page[page_id])
            program.append(("update", rid, f"dc-{txn_index}-{page_id}"))
        program.append(("commit",))
        programs.append(program)
    return programs


def cad_session_programs(num_txns: int, working_set: Sequence[RecordId],
                         revisits: int, seed: int = 23) -> List[Program]:
    """A CAD/CASE-style session: successive transactions repeatedly
    visiting the same cached working set (experiment E2).

    Each transaction reads the whole working set ``revisits`` times and
    updates a few records — inter-transaction cache retention is what
    makes this cheap under ARIES/CSA and expensive under purge-at-commit.
    """
    rng = random.Random(seed)
    programs: List[Program] = []
    for txn_index in range(num_txns):
        program: Program = []
        for _ in range(revisits):
            for rid in working_set:
                program.append(("read", rid))
        for rid in rng.sample(list(working_set), max(1, len(working_set) // 8)):
            program.append(("update", rid, f"cad-{txn_index}"))
        program.append(("commit",))
        programs.append(program)
    return programs


def run_program_sequential(system: ClientServerSystem, client_id: str,
                           program: Program) -> Optional[str]:
    """Execute one program to completion at one client.

    Returns "committed" / "aborted".  Lock conflicts are not handled
    here — use the scheduler for concurrent mixes.
    """
    client = system.client(client_id)
    txn = client.begin()
    for op in program:
        kind = op[0]
        if kind == "read":
            client.read(txn, op[1])
        elif kind == "update":
            client.update(txn, op[1], op[2])
        elif kind == "insert":
            client.insert(txn, op[1], op[2])
        elif kind == "delete":
            client.delete(txn, op[1])
        elif kind == "savepoint":
            client.savepoint(txn, op[1])
        elif kind == "rollback_to":
            client.rollback(txn, savepoint=op[1])
        elif kind == "commit":
            client.commit(txn)
            return "committed"
        elif kind == "abort":
            client.rollback(txn)
            return "aborted"
        else:
            raise ValueError(f"unknown op {op!r}")
    client.commit(txn)
    return "committed"
