"""Large-scale workload driver: zipfian access, hot keys, client churn.

The generators in :mod:`repro.workloads.generator` build small program
mixes for a handful of hand-named clients.  This driver builds the
*system* too: it provisions N clients (10k+ works), seeds a shared
table, generates a zipfian/hot-key program per client per wave, and
executes each wave through the event-driven
:class:`repro.engine.Engine` (or the legacy
:class:`~repro.harness.scheduler.PollingScheduler`, for baseline rows).

Everything is deterministic from ``SystemConfig.seed``: the zipfian
sampler, the read/update coin flips, the churn victim selection, and
the engine's execution order are all pure functions of the seed and the
spec, so a run is replayable bit-for-bit.

Between waves the driver can *churn* clients: a deterministic slice of
the population fails and is recovered (``crash_client``), exercising
the paper's client-recovery path under load, while the remaining
clients' caches and cached locks stay warm.  Churn costs a server
checkpoint per recovery (the coordinated DPL gather), so the knob is
priced for the 100-to-1k-client tiers; the 10k tier typically runs
churn-free.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.system import ClientServerSystem
from repro.engine.core import Engine, ScheduleResult, TxnOutcomeKind
from repro.workloads.generator import Program, seed_table

__all__ = ["DriverSpec", "DriverReport", "ZipfSampler",
           "build_system", "generate_wave", "run_driver"]


@dataclass(frozen=True)
class DriverSpec:
    """Shape of one driver run.  All randomness derives from the system
    seed; the spec itself is pure structure."""

    #: Concurrent simulated clients (each gets one program per wave).
    clients: int = 100
    #: Record operations per transaction (plus the terminal commit).
    ops_per_txn: int = 4
    #: Probability an operation reads instead of updates.
    read_fraction: float = 0.5
    #: Zipf-like skew exponent over the record space: 0 = uniform,
    #: ~0.99 = YCSB-style hot keys.  Access probability of the i-th
    #: record is proportional to 1/(i+1)^theta.
    zipf_theta: float = 0.99
    #: Restrict all sampled accesses to the first ``hot_records``
    #: records when > 0 — a hard hot set on top of the zipfian skew.
    hot_records: int = 0
    #: Probability a transaction ends in ``abort`` instead of commit.
    abort_fraction: float = 0.0
    #: Sort each transaction's record accesses by record id (the
    #: classic deadlock-avoidance discipline).  Keeps a heavily
    #: contended run queueing-bound instead of victim-bound, which is
    #: what throughput benchmarks want; leave False to exercise the
    #: deadlock detector under skew.
    ordered_access: bool = False
    #: Waves of programs; every wave runs one program per live client.
    waves: int = 1
    #: Fraction of clients crashed + recovered between waves.
    churn_rate: float = 0.0
    #: Table geometry for the seeded record space.
    table_pages: int = 64
    records_per_page: int = 8


@dataclass
class DriverReport:
    """Aggregate, fully deterministic outcome of a driver run."""

    clients: int = 0
    waves: int = 0
    programs: int = 0
    committed: int = 0
    aborted: int = 0
    deadlock_victims: int = 0
    #: Record operations attempted across all programs (excluding the
    #: terminal commit/abort), i.e. the throughput numerator.
    ops: int = 0
    #: Max per-transaction step attempts, per wave.
    rounds_per_wave: List[int] = field(default_factory=list)
    #: Clients crashed + recovered between waves.
    churned: int = 0
    #: Per-transaction latency in executed-op ticks, all waves pooled.
    latency_ticks: List[int] = field(default_factory=list)

    def latency_histogram(self) -> "Histogram":
        """The run's latency distribution as a deterministic log2
        histogram (``repro.obs.hist``) — the same instrument the live
        ``MetricsHub`` fills, built here from the recorded ticks."""
        from repro.obs.hist import Histogram
        return Histogram.from_values(self.latency_ticks)

    def p50_latency_ticks(self) -> int:
        return self.latency_histogram().p50()

    def p95_latency_ticks(self) -> int:
        return self.latency_histogram().p95()

    def p99_latency_ticks(self) -> int:
        return self.latency_histogram().p99()


class ZipfSampler:
    """Deterministic zipfian index sampler over ``[0, n)``.

    Weights ``1/(i+1)^theta`` are precomputed into a cumulative table
    once; each sample is one RNG draw plus a bisect — no per-sample
    allocation, suitable for millions of draws.
    """

    def __init__(self, n: int, theta: float) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs a non-empty index space")
        self.n = n
        self.theta = theta
        cumulative: List[float] = []
        total = 0.0
        for i in range(n):
            total += 1.0 / ((i + 1) ** theta) if theta else 1.0
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(
            self._cumulative, rng.random() * self._total)


def client_ids_for(count: int) -> List[str]:
    """Stable client naming: W00000 .. W<count-1>, zero-padded so sort
    order equals creation order at any population size."""
    width = max(5, len(str(count - 1)) if count else 1)
    return [f"W{i:0{width}d}" for i in range(count)]


def build_system(spec: DriverSpec,
                 config: Optional[SystemConfig] = None,
                 ) -> Tuple[ClientServerSystem, List]:
    """Provision the complex and the seeded record space for a run.

    The default config makes three population-scale choices (pass an
    explicit ``config`` to override any of them):

    * periodic checkpoints off — a coordinated checkpoint gathers a
      dirty-page list from every connected client, an O(population)
      RPC burst the hot path must not pay;
    * lock caching off — cached global locks are a locality
      optimization, and under hot-key skew every conflicting acquire
      triggers a reduce-callback to each cached holder (an O(holders)
      RPC storm per hot-record lock);
    * commit RPC batching on — the driver runs fault-free, so the
      commit path's ship + force pair coalesces.
    """
    if config is None:
        config = SystemConfig(client_checkpoint_interval=0,
                              server_checkpoint_interval=0,
                              llm_cache_locks=False,
                              rpc_batching=True)
    ids = client_ids_for(spec.clients)
    system = ClientServerSystem(config, client_ids=ids[:1])
    system.bootstrap(data_pages=spec.table_pages,
                     free_pages=max(16, spec.table_pages // 4))
    rids = seed_table(system, ids[0], "zipf", spec.table_pages,
                      spec.records_per_page)
    for client_id in ids[1:]:
        system.add_client(client_id)
    return system, rids


def generate_wave(spec: DriverSpec, rids: Sequence, wave: int,
                  live_clients: Sequence[str],
                  rng: random.Random) -> List[Tuple[str, Program]]:
    """One program per live client, zipfian over the (hot) record set."""
    space = len(rids)
    if spec.hot_records > 0:
        space = min(space, spec.hot_records)
    sampler = ZipfSampler(space, spec.zipf_theta)
    assignments: List[Tuple[str, Program]] = []
    for seq, client_id in enumerate(live_clients):
        program: Program = []
        for op_index in range(spec.ops_per_txn):
            rid = rids[sampler.sample(rng)]
            if rng.random() < spec.read_fraction:
                program.append(("read", rid))
            else:
                program.append(
                    ("update", rid, f"w{wave}-{seq}-{op_index}"))
        if spec.ordered_access:
            program.sort(key=lambda op: (op[1].page_id, op[1].slot))
        terminal = ("abort",) if (
            spec.abort_fraction > 0
            and rng.random() < spec.abort_fraction) else ("commit",)
        program.append(terminal)
        assignments.append((client_id, program))
    return assignments


def run_driver(spec: DriverSpec,
               config: Optional[SystemConfig] = None,
               executor: str = "engine",
               max_rounds: int = 1_000_000) -> DriverReport:
    """Run the full workload; returns the deterministic report.

    ``executor`` selects ``"engine"`` (event-driven, the default) or
    ``"polling"`` (the legacy round-robin scheduler) so benchmarks can
    produce like-for-like rows from one code path.
    """
    system, rids = build_system(spec, config)
    rng = random.Random((system.config.seed << 8) ^ 0x5EED)
    ids = client_ids_for(spec.clients)
    report = DriverReport(clients=spec.clients, waves=spec.waves)
    for wave in range(spec.waves):
        if wave and spec.churn_rate > 0:
            report.churned += _churn(system, ids, spec, wave, rng)
        assignments = generate_wave(spec, rids, wave, ids, rng)
        result = _execute(system, assignments, executor, max_rounds)
        report.programs += len(assignments)
        report.committed += result.committed
        report.aborted += result.aborted
        report.deadlock_victims += result.deadlock_victims
        report.rounds_per_wave.append(result.rounds)
        report.ops += sum(len(p) - 1 for _, p in assignments)
        report.latency_ticks.extend(result.latency_ticks)
    return report


def _execute(system: ClientServerSystem,
             assignments: List[Tuple[str, Program]],
             executor: str, max_rounds: int) -> ScheduleResult:
    if executor == "engine":
        return Engine(system).run(assignments, max_rounds=max_rounds)
    if executor == "polling":
        from repro.harness.scheduler import PollingScheduler
        return PollingScheduler(system).run(assignments,
                                            max_rounds=max_rounds)
    raise ValueError(f"unknown executor {executor!r}")


def _churn(system: ClientServerSystem, ids: List[str], spec: DriverSpec,
           wave: int, rng: random.Random) -> int:
    """Crash + recover a deterministic slice of the population.

    Victims are sampled without replacement from the full id space;
    each goes through the real client-failure path (server-side client
    recovery, lock release, checkpoint), then rejoins before the next
    wave — its cache cold, everyone else's warm.
    """
    victims = max(1, int(len(ids) * spec.churn_rate))
    for client_id in rng.sample(ids, victims):
        system.crash_client(client_id, recover=True)
        system.reconnect_client(client_id)
    return victims
