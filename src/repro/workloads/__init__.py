"""Workload generators for examples, tests and benchmarks."""

from repro.workloads.generator import (
    Program,
    WorkloadSpec,
    cad_session_programs,
    debit_credit_programs,
    generate_programs,
    run_program_sequential,
    seed_table,
)

__all__ = [
    "Program",
    "WorkloadSpec",
    "cad_session_programs",
    "debit_credit_programs",
    "generate_programs",
    "run_program_sequential",
    "seed_table",
]
