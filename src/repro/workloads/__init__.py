"""Workload generators for examples, tests and benchmarks."""

from repro.workloads.driver import (
    DriverReport,
    DriverSpec,
    ZipfSampler,
    build_system,
    generate_wave,
    run_driver,
)
from repro.workloads.generator import (
    Program,
    WorkloadSpec,
    cad_session_programs,
    debit_credit_programs,
    generate_programs,
    run_program_sequential,
    seed_table,
)

__all__ = [
    "DriverReport",
    "DriverSpec",
    "Program",
    "WorkloadSpec",
    "ZipfSampler",
    "build_system",
    "cad_session_programs",
    "debit_credit_programs",
    "generate_programs",
    "generate_wave",
    "run_driver",
    "run_program_sequential",
    "seed_table",
]
