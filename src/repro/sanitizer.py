"""Runtime latch/lock-order and WAL sanitizer (the dynamic plane).

The static linter (``repro.analysis``) proves ordering disciplines over
call paths it can see; this module checks the same disciplines on every
*executed* path.  A :class:`Sanitizer` is attached by
:meth:`repro.core.system.ClientServerSystem.attach_sanitizer` — the same
attachment-is-the-enable-switch pattern as the tracer and the fault
plane, so an unattached hook costs one pointer comparison and the
sanitizer never touches a metrics counter (disabled runs are
byte-identical).

Hook points and what they feed:

* ``BufferPool.fix/unfix/clear`` — per-actor latch (pin) stacks;
* ``LockTable.acquire/release/release_all/clear`` — per-actor lock
  holdings (GLM tables derive the actor from the owner, which is a
  client id; LLM tables derive it from the table name);
* engine ``_park`` / op completion / ``_on_terminated`` and the
  client's transaction-finish path — *span* boundaries;
* ``StableLog.append/force/crash`` and ``Server._disk_write`` — the
  WAL force-before-externalize boundary.

Violations raised (each one a :class:`SanitizerViolation`):

* **latch-order inversion** — two distinct pages pinned in one order
  somewhere, and in the opposite order somewhere else (the classic
  deadlock seed; the global pair-order memory spans actors and runs);
* **unpaired fix** — a latch still held when its actor's span ends
  (op completed, transaction finished, or the actor parked: pins must
  never survive into a wait);
* **WAL violation** — a page externalized to the database disk whose
  ``page_LSN`` names a log record that was appended but never forced.

Acquisition-order *edges* are recorded at resource-class granularity
(:data:`LATCH_PAGE`, :data:`LOCK_LOGICAL`, :data:`LOCK_PHYSICAL`) and
only between acquisitions of the same span — a lock held since a
previous operation does not order the next operation's acquisitions.
That is exactly the call-path-local ordering the static
``repro.analysis.dataflow`` graph computes, which is what makes the
cross-check (static graph must be a superset of the observed graph)
meaningful.

``SanitizerViolation`` subclasses ``BaseException`` for the same reason
``CrashPointReached`` does: it must not be absorbed by ``except
Exception`` domain-error handling (e.g. the RPC dispatcher's error
conversion) on its way out of an arbitrarily deep hook site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

#: Resource classes shared with the static plane
#: (``repro.analysis.dataflow.lockgraph`` imports these literals).
LATCH_PAGE = "latch.page"
LOCK_LOGICAL = "lock.logical"
LOCK_PHYSICAL = "lock.physical"

RESOURCE_CLASSES = (LATCH_PAGE, LOCK_LOGICAL, LOCK_PHYSICAL)


class SanitizerViolation(BaseException):
    """A protocol-ordering invariant broke at runtime.

    BaseException (not ReproError): violations must propagate raw
    through every domain-error handler — a sanitizer trip is a finding
    about the code, never a recoverable condition of the workload.
    """

    def __init__(self, kind: str, actor: str, detail: str) -> None:
        super().__init__(f"[{kind}] actor={actor}: {detail}")
        self.kind = kind
        self.actor = actor
        self.detail = detail


@dataclass(frozen=True)
class _Token:
    """One held resource: class, instance key, and release pairing."""

    cls: str
    key: object
    table: str
    owner: str


def _pool_actor(pool_name: str) -> str:
    """``C1-pool`` -> ``C1``; ``server-pool`` -> ``server``."""
    if pool_name.endswith("-pool"):
        return pool_name[:-len("-pool")]
    return pool_name


def _table_actor(table_name: str, owner: str) -> str:
    """LLM tables belong to one client; GLM owners *are* client ids."""
    if table_name.startswith("llm-"):
        return table_name[len("llm-"):]
    return owner


def _lock_class(table_name: str) -> str:
    return LOCK_PHYSICAL if "physical" in table_name else LOCK_LOGICAL


class Sanitizer:
    """Per-actor held-resource stacks + global acquisition-order state."""

    def __init__(self) -> None:
        #: actor -> every currently held token, in acquisition order.
        self._held: Dict[str, List[_Token]] = {}
        #: actor -> tokens acquired in the current span and still held.
        self._span: Dict[str, List[_Token]] = {}
        #: Unordered latch pair -> the first-seen acquisition direction.
        self._pair_order: Dict[FrozenSet[object], Tuple[object, object]] = {}
        #: Observed class-level acquisition-order edges (for cross-check).
        self._edges: Set[Tuple[str, str]] = set()
        #: LSN -> end address of its log frame, for appended-not-forced
        #: records (pruned as the forced boundary advances).
        self._pending_lsn: Dict[int, int] = {}
        self._flushed_addr: int = 0

    # -- latches (buffer pool pins) ---------------------------------------

    def on_fix(self, pool_name: str, page_id: int) -> None:
        actor = _pool_actor(pool_name)
        self._note_acquire(actor, _Token(LATCH_PAGE, page_id, pool_name, actor))

    def on_unfix(self, pool_name: str, page_id: int) -> None:
        actor = _pool_actor(pool_name)
        self._drop(actor, _Token(LATCH_PAGE, page_id, pool_name, actor))

    def on_pool_clear(self, pool_name: str) -> None:
        """Crash: every pin of this pool's actor vanishes with the frames."""
        actor = _pool_actor(pool_name)
        for stack in (self._held, self._span):
            tokens = stack.get(actor)
            if tokens:
                stack[actor] = [t for t in tokens if t.table != pool_name]

    # -- locks (GLM / LLM tables) -----------------------------------------

    def on_lock_acquire(self, table_name: str, owner: str,
                        resource: object) -> None:
        actor = _table_actor(table_name, owner)
        token = _Token(_lock_class(table_name), resource, table_name, owner)
        held = self._held.setdefault(actor, [])
        if token in held:
            return  # re-grant / conversion of a lock already held
        self._note_acquire(actor, token)

    def on_lock_release(self, table_name: str, owner: str,
                        resource: object) -> None:
        actor = _table_actor(table_name, owner)
        self._drop(actor, _Token(_lock_class(table_name), resource,
                                 table_name, owner))

    def on_lock_release_all(self, table_name: str, owner: str) -> None:
        actor = _table_actor(table_name, owner)
        for stack in (self._held, self._span):
            tokens = stack.get(actor)
            if tokens:
                stack[actor] = [t for t in tokens
                                if not (t.table == table_name
                                        and t.owner == owner)]

    def on_table_clear(self, table_name: str) -> None:
        """Crash: the whole lock table is volatile."""
        for stack in (self._held, self._span):
            for actor, tokens in stack.items():
                if tokens:
                    stack[actor] = [t for t in tokens
                                    if t.table != table_name]

    # -- span boundaries ----------------------------------------------------

    def on_span_exit(self, actor: str) -> None:
        """An operation completed or a transaction finished: no pin may
        survive the span (the repo-wide fix/unfix pairing discipline)."""
        latches = [t for t in self._held.get(actor, ()) if t.cls == LATCH_PAGE]
        if latches:
            pages = sorted({str(t.key) for t in latches})
            raise SanitizerViolation(
                "unpaired-fix", actor,
                f"span ended with {len(latches)} pin(s) still held on "
                f"page(s) {', '.join(pages)}")
        self._span[actor] = []

    def on_park(self, actor: str) -> None:
        """The actor is entering the engine's wait set.  Pins are
        released by the conflict unwind before the park, so any latch
        still held here is a leak about to span a wait."""
        self.on_span_exit(actor)

    # -- WAL boundary ------------------------------------------------------

    def on_log_append(self, lsn: int, frame_end_addr: int) -> None:
        if frame_end_addr > self._flushed_addr:
            self._pending_lsn[int(lsn)] = frame_end_addr

    def on_log_force(self, flushed_addr: int) -> None:
        if flushed_addr <= self._flushed_addr:
            return
        self._flushed_addr = flushed_addr
        if self._pending_lsn:
            self._pending_lsn = {
                lsn: end for lsn, end in self._pending_lsn.items()
                if end > flushed_addr
            }

    def on_log_crash(self, end_of_log_addr: int) -> None:
        """Server log crash: the unforced tail is gone and whatever
        survived is, by definition, stable."""
        self._flushed_addr = end_of_log_addr
        self._pending_lsn.clear()

    def on_page_externalize(self, page_id: int, page_lsn: int) -> None:
        frame_end = self._pending_lsn.get(int(page_lsn))
        if frame_end is not None and frame_end > self._flushed_addr:
            raise SanitizerViolation(
                "wal", "server",
                f"page {page_id} externalized with page_lsn {int(page_lsn)} "
                f"whose log frame ends at {frame_end} but only "
                f"{self._flushed_addr} is forced")

    # -- inspection --------------------------------------------------------

    def observed_edges(self) -> FrozenSet[Tuple[str, str]]:
        """Class-level acquisition-order edges seen so far."""
        return frozenset(self._edges)

    def held_latches(self, actor: str) -> List[object]:
        return [t.key for t in self._held.get(actor, ())
                if t.cls == LATCH_PAGE]

    # -- internals ---------------------------------------------------------

    def _note_acquire(self, actor: str, token: _Token) -> None:
        span = self._span.setdefault(actor, [])
        for prev in span:
            if prev.cls == token.cls and prev.key == token.key:
                continue  # re-entrant pin / re-grant: no self-ordering
            self._edges.add((prev.cls, token.cls))
            if prev.cls == LATCH_PAGE and token.cls == LATCH_PAGE:
                self._check_latch_pair(actor, prev.key, token.key)
        span.append(token)
        self._held.setdefault(actor, []).append(token)

    def _check_latch_pair(self, actor: str, held_key: object,
                          new_key: object) -> None:
        pair = frozenset((held_key, new_key))
        direction = (held_key, new_key)
        first = self._pair_order.setdefault(pair, direction)
        if first != direction:
            raise SanitizerViolation(
                "latch-order", actor,
                f"pages pinned in order {held_key} -> {new_key} but the "
                f"opposite order {first[0]} -> {first[1]} was observed "
                "earlier — a latch deadlock seed")

    def _drop(self, actor: str, token: _Token) -> None:
        for stack in (self._held, self._span):
            tokens = stack.get(actor)
            if tokens is None:
                continue
            for index in range(len(tokens) - 1, -1, -1):
                if tokens[index] == token:
                    del tokens[index]
                    break


__all__ = [
    "Sanitizer", "SanitizerViolation", "RESOURCE_CLASSES",
    "LATCH_PAGE", "LOCK_LOGICAL", "LOCK_PHYSICAL",
]
