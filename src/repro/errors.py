"""Exception hierarchy for the ARIES/CSA reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The hierarchy mirrors the subsystems: storage, locking, logging,
transactions, network and recovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for page/disk/buffer-pool errors."""


class PageNotFoundError(StorageError):
    """A page id does not exist on disk or in any reachable buffer."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} not found")
        self.page_id = page_id


class PageCorruptedError(StorageError):
    """A page image failed its integrity check (process/media failure)."""

    def __init__(self, page_id: int, where: str = "unknown") -> None:
        super().__init__(f"page {page_id} is corrupted ({where})")
        self.page_id = page_id
        self.where = where


class MediaFailureError(StorageError):
    """The disk copy of a page is unreadable; media recovery is required."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"media failure reading page {page_id}")
        self.page_id = page_id


class BufferPoolFullError(StorageError):
    """No evictable frame is available in a buffer pool."""


class TransientIOError(StorageError):
    """An I/O attempt failed transiently; the same request may succeed
    if retried.  Only ever raised by injected faults
    (:class:`repro.faults.FaultPlan`); callers on the page-flush and
    archive paths retry with a bounded deterministic budget."""

    def __init__(self, what: str, attempt: int) -> None:
        super().__init__(f"transient I/O error during {what} "
                         f"(attempt {attempt})")
        self.what = what
        self.attempt = attempt


class RecordError(StorageError):
    """Base class for record-level (slotted page) errors."""


class RecordNotFoundError(RecordError):
    """The requested slot does not hold a record."""

    def __init__(self, page_id: int, slot: int) -> None:
        super().__init__(f"no record in page {page_id} slot {slot}")
        self.page_id = page_id
        self.slot = slot


class RecordExistsError(RecordError):
    """An insert targeted a slot that already holds a record."""

    def __init__(self, page_id: int, slot: int) -> None:
        super().__init__(f"record already present in page {page_id} slot {slot}")
        self.page_id = page_id
        self.slot = slot


class PageFullError(RecordError):
    """A page has no free space for the requested insert."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} has no free space")
        self.page_id = page_id


class AllocationError(StorageError):
    """Space-map allocation or deallocation failed."""


class ArchiveError(StorageError):
    """No usable backup copy exists for a page needing media recovery."""


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------

class LogError(ReproError):
    """Base class for log-manager errors."""


class LogRecordNotFoundError(LogError):
    """A log address or LSN could not be resolved to a record."""


class WALViolationError(LogError):
    """An action would violate the write-ahead-log protocol.

    Raised by the server buffer manager if a dirty page would reach disk
    before the log records covering it are stable.  In a correct run this
    is never raised; tests use it to prove the protocol holds.
    """


# ---------------------------------------------------------------------------
# Locking
# ---------------------------------------------------------------------------

class LockError(ReproError):
    """Base class for lock-manager errors."""


class LockConflictError(LockError):
    """A lock request conflicts with locks held by other owners.

    The cooperative scheduler catches this to put the requester on the
    wait queue; direct callers see it as "would block".
    """

    def __init__(self, resource: object, requested: str, holders: tuple) -> None:
        # No message built here: conflicts are control flow on the hot
        # path (caught and turned into waits), and behind a hot shared
        # lock ``holders`` can be thousands of owners — formatting them
        # eagerly on every conflict is an O(crowd) tax nobody reads.
        super().__init__()
        self.resource = resource
        self.requested = requested
        self.holders = holders

    def __str__(self) -> str:
        shown = ", ".join(repr(h) for h in self.holders[:8])
        more = len(self.holders) - 8
        if more > 0:
            shown += f", ... {more} more"
        return (f"lock on {self.resource!r} in mode {self.requested} "
                f"conflicts with holders ({shown})")


class DeadlockError(LockError):
    """The requester was chosen as a deadlock victim."""

    def __init__(self, victim: str, cycle: tuple) -> None:
        super().__init__(f"deadlock: victim {victim}, cycle {cycle}")
        self.victim = victim
        self.cycle = cycle


class LockNotHeldError(LockError):
    """An unlock or downgrade named a lock the owner does not hold."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionStateError(TransactionError):
    """An operation is illegal in the transaction's current state."""


class UnknownTransactionError(TransactionError):
    """A transaction id is not present in the transaction table."""

    def __init__(self, txn_id: str) -> None:
        super().__init__(f"unknown transaction {txn_id}")
        self.txn_id = txn_id


class SavepointError(TransactionError):
    """A partial rollback named an unknown or crossed savepoint."""


# ---------------------------------------------------------------------------
# Network / nodes
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class NodeUnavailableError(NetworkError):
    """The destination node has crashed or is disconnected."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node {node_id} is unavailable")
        self.node_id = node_id


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

class RecoveryError(ReproError):
    """Base class for recovery-pass failures."""


class CheckpointError(RecoveryError):
    """A checkpoint could not be taken or parsed."""


class RecoveryInvariantError(RecoveryError):
    """An ARIES invariant was observed broken during recovery.

    Never raised in correct operation; guards the properties that the
    paper's correctness argument rests on (e.g. a redo applying to a page
    whose page_LSN already exceeds the record's LSN in a way that signals
    lost monotonicity).
    """


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------

class ReplicationError(ReproError):
    """The log-shipping / failover protocol was violated (DESIGN §15).

    Raised on ship-stream gaps, address divergence between the primary's
    log and the standby's replica, and failover driver misuse (e.g. a
    stale-primary probe before any failover happened).
    """
