"""Record-level helpers over slotted pages."""

from repro.records.heap import RecordId, decode_value, encode_value

__all__ = ["RecordId", "decode_value", "encode_value"]
