"""Record identifiers and value encoding for heap (data) pages.

The client API works in terms of :class:`RecordId` — a (page_id, slot)
pair, the classic RID.  Application values (ints, strings, bytes,
tuples thereof) are encoded with the library codec so that before/after
images in log records are real byte strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Tuple

from repro.core import codec
from repro.storage.page import Page, PageKind


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of a record: page id plus slot number."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"{self.page_id}.{self.slot}"


def encode_value(value: Any) -> bytes:
    """Encode an application value into a record image."""
    return codec.encode(value)


def decode_value(image: bytes) -> Any:
    """Decode a record image back into the application value."""
    return codec.decode(image)


def scan_page(page: Page) -> Iterator[Tuple[RecordId, Any]]:
    """Yield (rid, decoded value) for every record on a data page."""
    if page.kind is not PageKind.DATA:
        return
    for slot, image in page.records():
        yield RecordId(page.page_id, slot), decode_value(image)
