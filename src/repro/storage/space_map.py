"""Space map pages (SMPs): allocation state and the section 2.3 LSN trick.

Page-id space is segmented DB2-style: every ``coverage + 1`` page ids
form a segment whose first page is the SMP describing the allocation
status of the following ``coverage`` pages.  Page 0 is therefore the
first SMP, covering pages 1..coverage, and so on.

The SMP is the linchpin of correct page reallocation across systems:

* deallocating page P updates the SMP entry for P, and the LSN
  assignment rule (``max(page_lsn, Local_Max_LSN) + 1``) guarantees the
  SMP's new LSN exceeds P's final LSN;
* reallocating P (possibly at a *different* client) again updates the
  SMP first, so the SMP's LSN at that moment still exceeds P's last LSN;
* the format record for the reborn P takes its LSN *from the SMP*, so
  P's page_LSN keeps increasing even though nobody read the dead page
  from disk.

This module provides the pure page-level operations; logging and LSN
plumbing live with the transaction machinery in ``repro.core``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import AllocationError
from repro.storage.page import Page, PageKind

#: Meta key under which an SMP stores its allocation bitmap.
BITMAP_KEY = "bitmap"

ALLOCATED = 1
FREE = 0


class SpaceMapLayout:
    """Pure arithmetic over the segmented page-id space."""

    def __init__(self, coverage: int) -> None:
        if coverage < 1:
            raise ValueError("SMP coverage must be positive")
        self.coverage = coverage
        self.segment_size = coverage + 1

    def is_smp(self, page_id: int) -> bool:
        return page_id % self.segment_size == 0

    def smp_for(self, page_id: int) -> int:
        """The SMP page id covering ``page_id``."""
        if self.is_smp(page_id):
            raise AllocationError(f"page {page_id} is itself a space map page")
        return (page_id // self.segment_size) * self.segment_size

    def bit_for(self, page_id: int) -> int:
        """The bitmap index of ``page_id`` within its SMP."""
        return page_id - self.smp_for(page_id) - 1

    def page_for(self, smp_id: int, bit: int) -> int:
        """Inverse of :meth:`bit_for`."""
        if not self.is_smp(smp_id):
            raise AllocationError(f"page {smp_id} is not a space map page")
        if not 0 <= bit < self.coverage:
            raise AllocationError(f"bit {bit} out of range for coverage {self.coverage}")
        return smp_id + 1 + bit

    def smp_ids(self, max_page_id: int) -> Iterator[int]:
        """All SMP ids needed to cover page ids up to ``max_page_id``."""
        smp = 0
        while smp <= max_page_id:
            yield smp
            smp += self.segment_size


def format_smp(page: Page, coverage: int) -> None:
    """Initialize ``page`` as an empty space map page."""
    page.format(PageKind.SPACE_MAP, page_lsn=page.page_lsn)
    page.set_meta(BITMAP_KEY, bytes(coverage))


def bitmap(page: Page) -> bytes:
    raw = page.get_meta(BITMAP_KEY)
    if not isinstance(raw, (bytes, bytearray)):
        raise AllocationError(f"page {page.page_id} has no allocation bitmap")
    return bytes(raw)


def bit_state(page: Page, bit: int) -> int:
    """ALLOCATED or FREE for one covered page."""
    bits = bitmap(page)
    if not 0 <= bit < len(bits):
        raise AllocationError(f"bit {bit} out of range on SMP {page.page_id}")
    return bits[bit]


def find_free_bit(page: Page) -> Optional[int]:
    """Lowest free bit on this SMP, or None when the segment is full."""
    for index, state in enumerate(bitmap(page)):
        if state == FREE:
            return index
    return None


def set_bit(page: Page, bit: int, state: int) -> int:
    """Set one allocation bit; returns the previous state.

    The caller logs this as an SMP_ALLOCATE / SMP_DEALLOCATE update with
    ``slot=bit`` and one-byte before/after images, then stores the new
    LSN into the SMP page.
    """
    bits = bytearray(bitmap(page))
    if not 0 <= bit < len(bits):
        raise AllocationError(f"bit {bit} out of range on SMP {page.page_id}")
    before = bits[bit]
    bits[bit] = state
    page.set_meta(BITMAP_KEY, bytes(bits))
    return before


def allocated_bits(page: Page) -> Iterator[int]:
    for index, state in enumerate(bitmap(page)):
        if state == ALLOCATED:
            yield index
