"""Storage substrate: pages, disk, stable log, buffer pools, SMPs, archive."""

from repro.storage.archive import Archive
from repro.storage.buffer_pool import BufferControlBlock, BufferPool
from repro.storage.disk import Disk
from repro.storage.page import Page, PageKind
from repro.storage.stable_log import StableLog
from repro.storage.space_map import SpaceMapLayout

__all__ = [
    "Archive",
    "BufferControlBlock",
    "BufferPool",
    "Disk",
    "Page",
    "PageKind",
    "SpaceMapLayout",
    "StableLog",
]
