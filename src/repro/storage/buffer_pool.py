"""Buffer manager: frames, BCBs, steal eviction, WAL bookkeeping.

Both the server and every client run one :class:`BufferPool`.  The pool
implements the mechanics — frames, LRU, fix counts — while the *owner*
supplies the policy through the ``on_evict`` callback:

* the **server** forces its log through the frame's ``force_addr`` and
  writes the page to disk (the WAL protocol of section 2.2);
* a **client** ships its buffered log records and then the dirty page to
  the server (the conservative WAL-with-respect-to-the-server rule of
  section 2.1).

Each buffer control block tracks the recovery bookkeeping the paper
assigns to it: ``rec_lsn`` at clients (the LSN of the most recent local
log record just before the page became dirty *at that client*, section
2.5.2) and ``rec_addr`` at the server (a lower bound for the log address
of the first update possibly missing from the disk version, section
2.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional

from repro.core.lsn import LSN, LogAddr, NULL_ADDR, NULL_LSN
from repro.errors import BufferPoolFullError
from repro.storage.page import Page

if TYPE_CHECKING:
    from repro.faults import FaultPlan
    from repro.obs.tracer import Tracer
    from repro.sanitizer import Sanitizer


@dataclass
class BufferControlBlock:
    """Per-frame state (the paper's BCB)."""

    page: Page
    dirty: bool = False
    fix_count: int = 0
    #: Client-side recovery bound (LSN space); NULL_LSN when clean.
    rec_lsn: LSN = NULL_LSN
    #: Server-side recovery bound (log-address space); NULL_ADDR when clean.
    rec_addr: LogAddr = NULL_ADDR
    #: Server-side WAL bound: log must be stable through this address
    #: before this page may be written to disk.
    force_addr: LogAddr = NULL_ADDR
    #: Server-side coverage bound: every log record for this page with a
    #: smaller address is reflected in this image (set to end-of-log when
    #: the image arrives/changes).  Lets the section 2.6.2 variant advance
    #: the GLM-resident RecAddr safely after a disk write (footnote 5).
    covered_addr: LogAddr = NULL_ADDR
    lru_tick: int = 0

    @property
    def page_id(self) -> int:
        return self.page.page_id


class BufferPool:
    """A fixed-capacity page cache with steal eviction."""

    def __init__(self, capacity: int, name: str = "pool",
                 on_evict: Optional[Callable[[BufferControlBlock], None]] = None) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.capacity = capacity
        self.name = name
        self.on_evict = on_evict
        #: Attached by the owning complex; ``None`` means tracing is off
        #: and every hook below costs one pointer comparison.
        self.tracer: Optional["Tracer"] = None
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional["FaultPlan"] = None
        #: Attached by the owning complex; ``None`` disables the runtime
        #: latch/lock-order sanitizer (repro.sanitizer).
        self.sanitizer: Optional["Sanitizer"] = None
        self._frames: Dict[int, BufferControlBlock] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    # -- lookup ------------------------------------------------------------

    def get(self, page_id: int) -> Optional[Page]:
        """Return the cached page, updating LRU and hit/miss counters."""
        bcb = self._frames.get(page_id)
        if bcb is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(bcb)
        return bcb.page

    def peek(self, page_id: int) -> Optional[Page]:
        """Lookup without touching LRU or counters (for assertions)."""
        bcb = self._frames.get(page_id)
        return bcb.page if bcb is not None else None

    def bcb(self, page_id: int) -> Optional[BufferControlBlock]:
        return self._frames.get(page_id)

    def _touch(self, bcb: BufferControlBlock) -> None:
        self._tick += 1
        bcb.lru_tick = self._tick

    # -- admission / eviction -------------------------------------------------

    def admit(self, page: Page, dirty: bool = False,
              rec_lsn: LSN = NULL_LSN, rec_addr: LogAddr = NULL_ADDR,
              force_addr: LogAddr = NULL_ADDR,
              covered_addr: LogAddr = NULL_ADDR) -> BufferControlBlock:
        """Place ``page`` in a frame, evicting if necessary.

        Admitting a page already present replaces the image but merges
        the recovery bookkeeping conservatively: the oldest rec_lsn /
        rec_addr is kept and the largest force_addr wins, exactly the
        server rule for receiving a newer dirty version of a page it
        already holds dirty (section 2.5.2).
        """
        existing = self._frames.get(page.page_id)
        if existing is not None:
            existing.page = page
            existing.covered_addr = max(existing.covered_addr, covered_addr)
            if dirty:
                was_dirty = existing.dirty
                existing.dirty = True
                if not was_dirty:
                    existing.rec_lsn = rec_lsn
                    existing.rec_addr = rec_addr
                else:
                    existing.rec_lsn = _min_lsn(existing.rec_lsn, rec_lsn)
                    existing.rec_addr = _min_addr(existing.rec_addr, rec_addr)
                existing.force_addr = max(existing.force_addr, force_addr)
            self._touch(existing)
            return existing
        if len(self._frames) >= self.capacity:
            self._evict_one()
        bcb = BufferControlBlock(
            page=page, dirty=dirty,
            rec_lsn=rec_lsn if dirty else NULL_LSN,
            rec_addr=rec_addr if dirty else NULL_ADDR,
            force_addr=force_addr,
            covered_addr=covered_addr,
        )
        self._frames[page.page_id] = bcb
        self._touch(bcb)
        return bcb

    def _evict_one(self) -> None:
        victim: Optional[BufferControlBlock] = None
        for bcb in self._frames.values():
            if bcb.fix_count > 0:
                continue
            if victim is None or bcb.lru_tick < victim.lru_tick:
                victim = bcb
        if victim is None:
            raise BufferPoolFullError(
                f"{self.name}: all {self.capacity} frames are fixed"
            )
        if self.tracer is not None:
            self.tracer.instant("buf", "evict", self.name,
                                page_id=victim.page_id, dirty=victim.dirty)
        if victim.dirty:
            # Steal: a dirty (possibly uncommitted) page leaves the pool.
            # The owner's callback must make it durable first.
            if self.faults is not None:
                self.faults.crashpoint("pool.evict.before_writeback",
                                       self.tracer)
            self.dirty_evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self.evictions += 1
        del self._frames[victim.page_id]

    # -- dirty-state transitions ------------------------------------------------

    def mark_dirty(self, page_id: int, rec_lsn: LSN = NULL_LSN,
                   rec_addr: LogAddr = NULL_ADDR,
                   force_addr: LogAddr = NULL_ADDR) -> BufferControlBlock:
        """Record that the cached page was modified.

        On the clean->dirty transition the given bounds are stored; on an
        already dirty page only ``force_addr`` advances (the recovery
        bounds must keep covering the earliest unpersisted update).
        """
        bcb = self._frames[page_id]
        if not bcb.dirty:
            bcb.dirty = True
            bcb.rec_lsn = rec_lsn
            bcb.rec_addr = rec_addr
        bcb.force_addr = max(bcb.force_addr, force_addr)
        return bcb

    def mark_clean(self, page_id: int) -> None:
        """The page's updates are now persistent at the next tier."""
        bcb = self._frames.get(page_id)
        if bcb is None:
            return
        bcb.dirty = False
        bcb.rec_lsn = NULL_LSN
        bcb.rec_addr = NULL_ADDR
        bcb.force_addr = NULL_ADDR

    def fix(self, page_id: int) -> None:
        self._frames[page_id].fix_count += 1
        if self.tracer is not None:
            self.tracer.instant("buf", "fix", self.name, page_id=page_id)
        if self.sanitizer is not None:
            self.sanitizer.on_fix(self.name, page_id)

    def unfix(self, page_id: int) -> None:
        bcb = self._frames[page_id]
        if bcb.fix_count <= 0:
            raise ValueError(f"unfix of unfixed page {page_id}")
        bcb.fix_count -= 1
        if self.tracer is not None:
            self.tracer.instant("buf", "unfix", self.name, page_id=page_id)
        if self.sanitizer is not None:
            self.sanitizer.on_unfix(self.name, page_id)

    def fixed(self, page_id: int) -> "_PinGuard":
        """Pin a resident page for the duration of a ``with`` block.

        The exception-safe spelling of fix/unfix: while pinned the frame
        cannot be chosen for eviction, so the caller's page object stays
        the cached image and its BCB survives any other admissions the
        block performs.  Entering yields the pinned page.

        Returns a tiny ``__slots__`` guard object rather than a
        ``@contextmanager`` generator: this runs once per record write,
        and the guard is one small allocation where the generator
        protocol costs two plus frame setup.
        """
        return _PinGuard(self, page_id)

    def drop(self, page_id: int) -> None:
        """Remove a frame without writeback (purge / invalidation)."""
        self._frames.pop(page_id, None)

    # -- inspection ----------------------------------------------------------

    def dirty_bcbs(self) -> Iterator[BufferControlBlock]:
        for page_id in sorted(self._frames):
            bcb = self._frames[page_id]
            if bcb.dirty:
                yield bcb

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._frames))

    def dirty_count(self) -> int:
        return sum(1 for bcb in self._frames.values() if bcb.dirty)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- crash model ------------------------------------------------------------

    def clear(self) -> None:
        """Crash: all volatile frames disappear."""
        self._frames.clear()
        if self.sanitizer is not None:
            self.sanitizer.on_pool_clear(self.name)

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0


def _min_lsn(a: LSN, b: LSN) -> LSN:
    if a == NULL_LSN:
        return b
    if b == NULL_LSN:
        return a
    return min(a, b)


def _min_addr(a: LogAddr, b: LogAddr) -> LogAddr:
    if a == NULL_ADDR:
        return b
    if b == NULL_ADDR:
        return a
    return min(a, b)


class _PinGuard:
    """Reusable-shape pin scope returned by :meth:`BufferPool.fixed`."""

    __slots__ = ("_pool", "_page_id")

    def __init__(self, pool: BufferPool, page_id: int) -> None:
        self._pool = pool
        self._page_id = page_id

    def __enter__(self) -> Page:
        pool = self._pool
        entered = False
        pool.fix(self._page_id)
        try:
            page = pool._frames[self._page_id].page
            entered = True
            return page
        finally:
            # A missing frame must not leak the pin count; on the
            # normal path release stays with __exit__.
            if not entered:
                pool.unfix(self._page_id)

    def __exit__(self, *exc_info: object) -> None:
        self._pool.unfix(self._page_id)
