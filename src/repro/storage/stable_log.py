"""The single stable log at the server.

ARIES/CSA keeps exactly one log, owned by the server (Figure 1).  Log
records arrive from the server's own log manager and, in batches, from
the clients' virtual-storage log buffers.  Appending assigns each record
a **log address** — the byte offset of its frame in the conceptual log
file — which is distinct from the LSN inside the record (section 2.2).

The log models the volatile/stable split precisely:

* ``append`` places the record in the volatile tail;
* ``force`` makes everything up to an address stable;
* ``crash`` discards the volatile tail, keeping only forced bytes.

Scanning decodes records on demand from their stored bytes, so recovery
reads exactly what survived, byte for byte.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.core.log_records import LogRecord, decode_record, encode_record
from repro.core.lsn import LogAddr
from repro.errors import LogRecordNotFoundError

#: Bytes of framing charged per record (length prefix etc.).
FRAME_OVERHEAD = 8


class StableLog:
    """Append-only log with force semantics and crash truncation."""

    def __init__(self) -> None:
        self._addrs: List[LogAddr] = []
        self._frames: List[bytes] = []
        self._next_addr: LogAddr = 0
        #: Exclusive upper bound of the stable prefix, as a byte address.
        self._flushed_addr: LogAddr = 0
        self.appends = 0
        self.forces = 0
        self.bytes_appended = 0
        self.records_lost_last_crash = 0

    # -- writing -----------------------------------------------------------

    def append(self, record: LogRecord) -> LogAddr:
        """Append ``record`` to the volatile tail; returns its address."""
        frame = encode_record(record)
        addr = self._next_addr
        self._addrs.append(addr)
        self._frames.append(frame)
        self._next_addr = addr + len(frame) + FRAME_OVERHEAD
        self.appends += 1
        self.bytes_appended += len(frame) + FRAME_OVERHEAD
        return addr

    def force(self, up_to_addr: Optional[LogAddr] = None) -> None:
        """Make the log stable through ``up_to_addr`` (inclusive).

        With no argument the whole log is forced.  Forcing an already
        stable prefix is a no-op and is not counted, matching the usual
        group-commit accounting.
        """
        if up_to_addr is None:
            target = self._next_addr
        else:
            target = self._frame_end(up_to_addr)
        if target <= self._flushed_addr:
            return
        self._flushed_addr = target
        self.forces += 1

    def _frame_end(self, addr: LogAddr) -> LogAddr:
        index = bisect.bisect_left(self._addrs, addr)
        if index >= len(self._addrs) or self._addrs[index] != addr:
            # Conservative callers may pass an address between frames;
            # force through the frame containing/preceding it.
            index = min(index, len(self._addrs) - 1)
            if index < 0:
                return 0
        return self._addrs[index] + len(self._frames[index]) + FRAME_OVERHEAD

    # -- reading -----------------------------------------------------------

    @property
    def end_of_log_addr(self) -> LogAddr:
        """Address one past the last appended record."""
        return self._next_addr

    @property
    def flushed_addr(self) -> LogAddr:
        return self._flushed_addr

    def is_stable(self, addr: LogAddr) -> bool:
        """True when the record at ``addr`` has been forced."""
        return self._frame_end(addr) <= self._flushed_addr if self._addrs else False

    def read_at(self, addr: LogAddr) -> LogRecord:
        """Decode the record whose frame starts at ``addr``."""
        index = bisect.bisect_left(self._addrs, addr)
        if index >= len(self._addrs) or self._addrs[index] != addr:
            raise LogRecordNotFoundError(f"no log record at address {addr}")
        return decode_record(self._frames[index])

    def scan(self, from_addr: LogAddr = 0,
             to_addr: Optional[LogAddr] = None) -> Iterator[Tuple[LogAddr, LogRecord]]:
        """Yield ``(addr, record)`` for records with addr in [from, to).

        ``from_addr`` need not land exactly on a frame boundary; scanning
        starts at the first frame at or after it — the conservative
        RecAddr semantics of section 2.5.2 rely on this.
        """
        start = bisect.bisect_left(self._addrs, max(from_addr, 0))
        for index in range(start, len(self._addrs)):
            addr = self._addrs[index]
            if to_addr is not None and addr >= to_addr:
                return
            yield addr, decode_record(self._frames[index])

    def scan_backward(self, from_addr: Optional[LogAddr] = None,
                      down_to_addr: LogAddr = 0) -> Iterator[Tuple[LogAddr, LogRecord]]:
        """Yield ``(addr, record)`` in descending address order.

        Covers records with addr in [down_to_addr, from_addr); with no
        ``from_addr`` the scan starts at the end of the log.  This is the
        access pattern of the ARIES undo pass, which in ARIES/CSA cannot
        chase PrevLSN pointers directly (LSNs are not addresses) and so
        walks the log backward matching records against the losers'
        expected UndoNxtLSNs.
        """
        if from_addr is None:
            start = len(self._addrs)
        else:
            start = bisect.bisect_left(self._addrs, from_addr)
        for index in range(start - 1, -1, -1):
            addr = self._addrs[index]
            if addr < down_to_addr:
                return
            yield addr, decode_record(self._frames[index])

    def record_count(self) -> int:
        return len(self._addrs)

    def records_between(self, from_addr: LogAddr, to_addr: Optional[LogAddr] = None) -> int:
        """How many records a scan over [from, to) would visit."""
        return sum(1 for _ in self.scan(from_addr, to_addr))

    # -- truncation ------------------------------------------------------------

    def truncate_prefix(self, up_to_addr: LogAddr) -> int:
        """Discard records with addresses below ``up_to_addr``.

        Addresses of surviving records are unchanged (they are logical
        offsets; a real system archives the bytes and advances the log's
        low-water mark).  Only the stable prefix may be truncated.
        Returns the number of records discarded.
        """
        if up_to_addr > self._flushed_addr:
            raise ValueError(
                f"cannot truncate into the volatile tail "
                f"(addr {up_to_addr} > flushed {self._flushed_addr})"
            )
        keep = bisect.bisect_left(self._addrs, up_to_addr)
        del self._addrs[:keep]
        del self._frames[:keep]
        return keep

    @property
    def low_water_addr(self) -> LogAddr:
        """Address of the oldest retained record (0 for an empty log)."""
        return self._addrs[0] if self._addrs else self._next_addr

    # -- crash model ---------------------------------------------------------

    def crash(self) -> None:
        """Server crash: the unforced tail vanishes."""
        keep = bisect.bisect_right(
            self._addrs,
            self._flushed_addr - 1,
        )
        # A frame survives iff its *end* is within the flushed prefix.
        while keep > 0:
            last = keep - 1
            end = self._addrs[last] + len(self._frames[last]) + FRAME_OVERHEAD
            if end <= self._flushed_addr:
                break
            keep = last
        self.records_lost_last_crash = len(self._addrs) - keep
        del self._addrs[keep:]
        del self._frames[keep:]
        self._next_addr = (
            self._addrs[-1] + len(self._frames[-1]) + FRAME_OVERHEAD
            if self._addrs else 0
        )
        self._flushed_addr = self._next_addr
