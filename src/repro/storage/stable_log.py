"""The single stable log at the server.

ARIES/CSA keeps exactly one log, owned by the server (Figure 1).  Log
records arrive from the server's own log manager and, in batches, from
the clients' virtual-storage log buffers.  Appending assigns each record
a **log address** — the byte offset of its frame in the conceptual log
file — which is distinct from the LSN inside the record (section 2.2).

The log models the volatile/stable split precisely:

* ``append`` places the record in the volatile tail;
* ``force`` makes everything up to an address stable;
* ``crash`` discards the volatile tail, keeping only forced bytes.

Storage layout
--------------

The log *is* its byte image: one contiguous ``bytearray`` holding, per
record, an 8-byte big-endian length prefix (the ``FRAME_OVERHEAD``
charged per record) followed by the encoded frame.  A record's logical
address is exactly ``_base`` plus its physical offset in the buffer, so
appends are O(1) buffer extends and address arithmetic is byte-exact.
A sorted frame-start index supports O(log n) address lookup; counting
(``records_between``) and truncation are index slices — no decoding.

Scanning decodes records on demand from their stored bytes, so recovery
reads exactly what survived, byte for byte.  The header-only variants
(``scan_headers`` / ``scan_headers_backward``) peek each frame's header
fields in place — no slicing, no record allocation — which is what lets
the recovery passes filter before they materialize; a small LRU of
decoded records keeps the undo/redo overlap cheap.
"""

from __future__ import annotations

import bisect
import struct
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple

from repro.core.log_records import (
    FrameHeader,
    LogRecord,
    decode_record,
    encode_record,
    peek_header_in,
)
from repro.core.lsn import LogAddr
from repro.errors import LogError, LogRecordNotFoundError

if TYPE_CHECKING:
    from repro.faults import FaultPlan
    from repro.obs.tracer import Tracer
    from repro.sanitizer import Sanitizer

#: Bytes of framing charged per record (the stored length prefix).
FRAME_OVERHEAD = 8

_FRAME_LEN = struct.Struct(">Q")


class StableLog:
    """Append-only log with force semantics and crash truncation."""

    #: Full-decode LRU capacity: sized for the undo/redo overlap of one
    #: restart (losers' tails), not for whole-log caching.
    DECODE_CACHE_SIZE = 256

    def __init__(self) -> None:
        #: Byte image of the retained log: [len u64][frame] per record.
        self._buf = bytearray()
        #: Sorted frame-start addresses (parallel to frames in _buf).
        self._index: List[LogAddr] = []
        #: Logical address of ``_buf[0]``; advanced by truncate_prefix.
        #: Addresses of archived bytes are never reused.
        self._base: LogAddr = 0
        #: Exclusive upper bound of the stable prefix, as a byte address.
        self._flushed_addr: LogAddr = 0
        #: LRU of fully decoded records keyed by address.
        self._decoded: "OrderedDict[LogAddr, LogRecord]" = OrderedDict()
        #: Attached by the owning complex; ``None`` disables the hooks.
        self.tracer: Optional["Tracer"] = None
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional["FaultPlan"] = None
        #: Attached by the owning complex; ``None`` disables the runtime
        #: WAL sanitizer (repro.sanitizer).
        self.sanitizer: Optional["Sanitizer"] = None
        #: Attached by the owning complex; ``None`` disables the
        #: log-force-bytes histogram (repro.obs.hist).
        self.metrics: Any = None
        self.appends = 0
        self.forces = 0
        self.bytes_appended = 0
        self.records_lost_last_crash = 0
        self.full_decodes = 0
        self.header_peeks = 0
        self.decode_cache_hits = 0

    # -- writing -----------------------------------------------------------

    def open_at(self, base_addr: LogAddr) -> None:
        """Position an empty log so its first append lands at ``base_addr``.

        Standby bootstrap (DESIGN §15): a log replica must reproduce the
        primary's addresses byte for byte, so a standby created after
        the primary already wrote (and possibly truncated) log opens its
        empty replica at the primary's low-water mark and replays the
        shipped frames from there.  Only a fresh, never-written log may
        be repositioned — anything else would silently renumber records.
        """
        if self._buf or self._base or self._flushed_addr:
            raise LogError("open_at requires a fresh, empty log")
        self._base = base_addr
        self._flushed_addr = base_addr

    def append(self, record: LogRecord) -> LogAddr:
        """Append ``record`` to the volatile tail; returns its address."""
        if self.faults is not None:
            self.faults.crashpoint("log.append.before", self.tracer)
        frame = encode_record(record)
        addr = self._base + len(self._buf)
        self._buf += _FRAME_LEN.pack(len(frame))
        self._buf += frame
        self._index.append(addr)
        self.appends += 1
        self.bytes_appended += len(frame) + FRAME_OVERHEAD
        if self.tracer is not None:
            self.tracer.instant("log", "append", "server", addr=addr,
                                lsn=int(record.lsn),
                                nbytes=len(frame) + FRAME_OVERHEAD)
        if self.sanitizer is not None:
            self.sanitizer.on_log_append(int(record.lsn),
                                         addr + FRAME_OVERHEAD + len(frame))
        return addr

    def force(self, up_to_addr: Optional[LogAddr] = None) -> None:
        """Make the log stable through ``up_to_addr`` (inclusive).

        With no argument the whole log is forced.  Forcing an already
        stable prefix is a no-op and is not counted, matching the usual
        group-commit accounting.
        """
        if self.faults is not None:
            self.faults.crashpoint("log.force.before", self.tracer)
        if up_to_addr is None:
            target = self.end_of_log_addr
        else:
            target = self._frame_end(up_to_addr)
        if target <= self._flushed_addr:
            return
        flushed_before = self._flushed_addr
        self._flushed_addr = target
        self.forces += 1
        if self.tracer is not None:
            self.tracer.instant("log", "force", "server",
                                flushed_addr=target)
        if self.sanitizer is not None:
            self.sanitizer.on_log_force(target)
        if self.metrics is not None:
            self.metrics.log_force_bytes.observe(target - flushed_before)

    def _frame_end(self, addr: LogAddr) -> LogAddr:
        index = bisect.bisect_left(self._index, addr)
        if index >= len(self._index) or self._index[index] != addr:
            # Conservative callers may pass an address between frames;
            # force through the frame containing/preceding it.
            index = min(index, len(self._index) - 1)
            if index < 0:
                return 0
        return self._index[index] + self._frame_length_at(index)

    def _frame_length_at(self, index: int) -> int:
        """Total frame size (prefix + payload) of frame ``index``."""
        offset = self._index[index] - self._base
        return FRAME_OVERHEAD + _FRAME_LEN.unpack_from(self._buf, offset)[0]

    def _payload_bounds(self, index: int) -> Tuple[int, int]:
        """Physical [start, end) of frame ``index``'s encoded payload."""
        offset = self._index[index] - self._base
        length = _FRAME_LEN.unpack_from(self._buf, offset)[0]
        start = offset + FRAME_OVERHEAD
        return start, start + length

    def _frame_bytes(self, index: int) -> bytes:
        start, end = self._payload_bounds(index)
        with memoryview(self._buf) as view:
            return bytes(view[start:end])

    def _decode_at(self, index: int, addr: LogAddr) -> LogRecord:
        """Full decode of frame ``index`` through the LRU cache."""
        cached = self._decoded.get(addr)
        if cached is not None:
            self._decoded.move_to_end(addr)
            self.decode_cache_hits += 1
            return cached
        record = decode_record(self._frame_bytes(index))
        self.full_decodes += 1
        self._decoded[addr] = record
        if len(self._decoded) > self.DECODE_CACHE_SIZE:
            self._decoded.popitem(last=False)
        return record

    # -- reading -----------------------------------------------------------

    @property
    def end_of_log_addr(self) -> LogAddr:
        """Address one past the last appended record."""
        return self._base + len(self._buf)

    @property
    def flushed_addr(self) -> LogAddr:
        return self._flushed_addr

    def is_stable(self, addr: LogAddr) -> bool:
        """True when the byte at ``addr`` lies in the forced prefix.

        ``flushed_addr`` always falls on a frame boundary, so for a
        record's address this is exactly "the whole frame is forced".
        The boundary cases are deliberate and tested:

        * an address below ``flushed_addr`` stays stable even after the
          frames holding it are archived away by ``truncate_prefix`` —
          the bytes were forced, whether or not a frame remains in
          memory to witness it (the old frame-lookup answered ``False``
          for every address once the log was empty, ``force()`` or not);
        * a trailing address (at or past end-of-log) is stable exactly
          when the whole log is — in particular, every address of an
          empty log is vacuously stable.
        """
        return addr < self._flushed_addr or self._flushed_addr == self.end_of_log_addr

    def read_at(self, addr: LogAddr) -> LogRecord:
        """Decode the record whose frame starts at ``addr``."""
        index = bisect.bisect_left(self._index, addr)
        if index >= len(self._index) or self._index[index] != addr:
            raise LogRecordNotFoundError(f"no log record at address {addr}")
        return self._decode_at(index, addr)

    def header_at(self, addr: LogAddr) -> FrameHeader:
        """Peek only the header of the record at ``addr``."""
        index = bisect.bisect_left(self._index, addr)
        if index >= len(self._index) or self._index[index] != addr:
            raise LogRecordNotFoundError(f"no log record at address {addr}")
        self.header_peeks += 1
        start, end = self._payload_bounds(index)
        return peek_header_in(self._buf, start, end)

    def frame_size(self, addr: LogAddr) -> int:
        """Bytes the record at ``addr`` occupies (frame + overhead)."""
        index = bisect.bisect_left(self._index, addr)
        if index >= len(self._index) or self._index[index] != addr:
            raise LogRecordNotFoundError(f"no log record at address {addr}")
        return self._frame_length_at(index)

    def scan(self, from_addr: LogAddr = 0,
             to_addr: Optional[LogAddr] = None) -> Iterator[Tuple[LogAddr, LogRecord]]:
        """Yield ``(addr, record)`` for records with addr in [from, to).

        ``from_addr`` need not land exactly on a frame boundary; scanning
        starts at the first frame at or after it — the conservative
        RecAddr semantics of section 2.5.2 rely on this.
        """
        start = bisect.bisect_left(self._index, max(from_addr, 0))
        for index in range(start, len(self._index)):
            addr = self._index[index]
            if to_addr is not None and addr >= to_addr:
                return
            cached = self._decoded.get(addr)
            if cached is not None:
                self.decode_cache_hits += 1
                yield addr, cached
            else:
                self.full_decodes += 1
                yield addr, decode_record(self._frame_bytes(index))

    def scan_backward(self, from_addr: Optional[LogAddr] = None,
                      down_to_addr: LogAddr = 0) -> Iterator[Tuple[LogAddr, LogRecord]]:
        """Yield ``(addr, record)`` in descending address order.

        Covers records with addr in [down_to_addr, from_addr); with no
        ``from_addr`` the scan starts at the end of the log.  This is the
        access pattern of the ARIES undo pass, which in ARIES/CSA cannot
        chase PrevLSN pointers directly (LSNs are not addresses) and so
        walks the log backward matching records against the losers'
        expected UndoNxtLSNs.
        """
        if from_addr is None:
            start = len(self._index)
        else:
            start = bisect.bisect_left(self._index, from_addr)
        for index in range(start - 1, -1, -1):
            addr = self._index[index]
            if addr < down_to_addr:
                return
            cached = self._decoded.get(addr)
            if cached is not None:
                self.decode_cache_hits += 1
                yield addr, cached
            else:
                self.full_decodes += 1
                yield addr, decode_record(self._frame_bytes(index))

    def scan_headers(self, from_addr: LogAddr = 0,
                     to_addr: Optional[LogAddr] = None
                     ) -> Iterator[Tuple[LogAddr, FrameHeader]]:
        """Header-only forward scan: ``(addr, FrameHeader)`` pairs.

        Same address semantics as :func:`scan`; each frame's header is
        peeked in place, no full record is materialized.  Callers fetch
        the records they actually need via :func:`read_at`, which serves
        repeats from the decode LRU.
        """
        start = bisect.bisect_left(self._index, max(from_addr, 0))
        for index in range(start, len(self._index)):
            addr = self._index[index]
            if to_addr is not None and addr >= to_addr:
                return
            self.header_peeks += 1
            payload_start, payload_end = self._payload_bounds(index)
            yield addr, peek_header_in(self._buf, payload_start, payload_end)

    def scan_headers_backward(self, from_addr: Optional[LogAddr] = None,
                              down_to_addr: LogAddr = 0
                              ) -> Iterator[Tuple[LogAddr, FrameHeader]]:
        """Header-only variant of :func:`scan_backward`."""
        if from_addr is None:
            start = len(self._index)
        else:
            start = bisect.bisect_left(self._index, from_addr)
        for index in range(start - 1, -1, -1):
            addr = self._index[index]
            if addr < down_to_addr:
                return
            self.header_peeks += 1
            payload_start, payload_end = self._payload_bounds(index)
            yield addr, peek_header_in(self._buf, payload_start, payload_end)

    def record_count(self) -> int:
        return len(self._index)

    def records_between(self, from_addr: LogAddr, to_addr: Optional[LogAddr] = None) -> int:
        """How many records a scan over [from, to) would visit.

        Pure index arithmetic — no frame is touched, let alone decoded.
        """
        start = bisect.bisect_left(self._index, max(from_addr, 0))
        if to_addr is None:
            return len(self._index) - start
        stop = bisect.bisect_left(self._index, to_addr, start)
        return stop - start

    # -- truncation ------------------------------------------------------------

    def truncate_prefix(self, up_to_addr: LogAddr) -> int:
        """Discard records with addresses below ``up_to_addr``.

        Addresses of surviving records are unchanged (they are logical
        offsets; a real system archives the bytes and advances the log's
        low-water mark).  Only the stable prefix may be truncated.
        Returns the number of records discarded.
        """
        if up_to_addr > self._flushed_addr:
            raise ValueError(
                f"cannot truncate into the volatile tail "
                f"(addr {up_to_addr} > flushed {self._flushed_addr})"
            )
        keep = bisect.bisect_left(self._index, up_to_addr)
        if keep:
            cut_addr = (
                self._index[keep] if keep < len(self._index)
                else self.end_of_log_addr
            )
            del self._buf[:cut_addr - self._base]
            del self._index[:keep]
            self._base = cut_addr
            self._decoded.clear()
        return keep

    @property
    def low_water_addr(self) -> LogAddr:
        """Address of the oldest retained record (end-of-log when empty)."""
        return self._index[0] if self._index else self.end_of_log_addr

    # -- crash model ---------------------------------------------------------

    def crash(self) -> None:
        """Server crash: the unforced tail vanishes.

        With a fault plan attached, the plan may decide that the device
        had flushed part of its queue when power failed (a *partial
        flush*): some prefix of the unforced whole frames survives the
        crash.  Surviving more log than the forced boundary promised is
        always safe — analysis/redo are driven by what is actually on
        stable storage — but exercises bookkeeping a clean truncation
        never would.
        """
        keep = bisect.bisect_right(self._index, self._flushed_addr - 1)
        # A frame survives iff its *end* is within the flushed prefix.
        while keep > 0:
            last = keep - 1
            if self._index[last] + self._frame_length_at(last) <= self._flushed_addr:
                break
            keep = last
        if self.faults is not None:
            # Partially flushed suffix: these frames survive the crash
            # even though force() never covered them.
            keep += self.faults.partial_flush_frames(len(self._index) - keep)
        self.records_lost_last_crash = len(self._index) - keep
        if keep < len(self._index):
            del self._buf[self._index[keep] - self._base:]
            del self._index[keep:]
        self._flushed_addr = self.end_of_log_addr
        # Post-crash appends reuse the truncated tail's addresses; drop
        # any cached decodes for them.
        self._decoded.clear()
        if self.sanitizer is not None:
            self.sanitizer.on_log_crash(self._flushed_addr)
