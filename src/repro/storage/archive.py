"""The archive: backup copies for media recovery (section 2.5.3).

A backup captures, for every page currently on disk, its image *and* a
log address recorded with the copy: the point from which a forward redo
scan is guaranteed to encounter every log record whose update might be
missing from the archived image.  Media recovery then is: load the
backup copy, redo from the recorded address, filtered by the usual
``page_LSN < record.LSN`` test.

The address recorded is supplied by the caller (the server), which knows
the conservative bound: the minimum RecAddr across every dirty page in
the complex at backup time (any update already on disk needs no redo;
any update not on disk is covered by some dirty page's RecAddr or lies
beyond end-of-log at backup time).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.lsn import LogAddr
from repro.errors import ArchiveError
from repro.faults import FaultPlan, io_retry
from repro.storage.disk import Disk
from repro.storage.page import Page


class Archive:
    """Stores page backups with their media-recovery start addresses."""

    def __init__(self) -> None:
        self._copies: Dict[int, Tuple[bytes, LogAddr]] = {}
        self.backups_taken = 0
        #: Page copies written to the archive (media-recovery I/O cost).
        self.archive_writes = 0
        #: Backup copies read back during media recovery.
        self.archive_reads = 0
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional[FaultPlan] = None

    def _store_copy(self, page_id: int, image: bytes,
                    redo_start_addr: LogAddr) -> None:
        """One archive copy write, retried through the fault plane's
        deterministic transient-I/O policy."""
        def attempt() -> None:
            if self.faults is not None:
                self.faults.maybe_io_error("archive.write", page_id)
            self._copies[page_id] = (image, redo_start_addr)
        io_retry(self.faults, attempt, "archive.write")
        self.archive_writes += 1

    def backup_from_disk(self, disk: Disk, redo_start_addr: LogAddr) -> int:
        """Archive every page currently on disk; returns the page count.

        ``redo_start_addr`` is the conservative redo bound computed by
        the server at the moment of the backup.
        """
        if self.faults is not None:
            self.faults.crashpoint("archive.backup.before_copy")
        count = 0
        for page_id in disk.page_ids():
            if disk.has_media_failure(page_id):
                continue
            page = disk.read_page(page_id)
            self._store_copy(page_id, page.to_bytes(), redo_start_addr)
            count += 1
        self.backups_taken += 1
        return count

    def backup_page(self, page: Page, redo_start_addr: LogAddr) -> None:
        """Archive a single page image."""
        if self.faults is not None:
            self.faults.crashpoint("archive.backup.before_copy")
        self._store_copy(page.page_id, page.to_bytes(), redo_start_addr)

    def restore_page(self, page_id: int) -> Tuple[Page, LogAddr]:
        """Return (backup copy, redo start address) for ``page_id``."""
        if self.faults is not None:
            self.faults.crashpoint("archive.restore.before")
        entry = self._copies.get(page_id)
        if entry is None:
            raise ArchiveError(f"no backup copy for page {page_id}")

        def attempt() -> Tuple[bytes, LogAddr]:
            if self.faults is not None:
                self.faults.maybe_io_error("archive.read", page_id)
            assert entry is not None
            return entry
        image, addr = io_retry(self.faults, attempt, "archive.read")
        self.archive_reads += 1
        return Page.from_bytes(image), addr

    def has_backup(self, page_id: int) -> bool:
        return page_id in self._copies

    def backup_lsn(self, page_id: int) -> Optional[int]:
        entry = self._copies.get(page_id)
        if entry is None:
            return None
        return Page.from_bytes(entry[0]).page_lsn
