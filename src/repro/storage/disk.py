"""The server's stable database disk.

The disk stores serialized page images (bytes, as produced by
``Page.to_bytes``).  Page writes are atomic — the simulation's crash
model is "everything volatile disappears, the disk keeps exactly the
images last written" — which is the standard assumption ARIES makes
about the storage layer.

Media failures (section 2.5.3) are injected per page: a failed page
raises :class:`MediaFailureError` on read until media recovery rewrites
it.  I/O counters feed the buffer-policy benchmarks (experiment E8).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from repro.errors import MediaFailureError, PageNotFoundError
from repro.faults import TORN_WRITE_CRASH, CrashPointReached, FaultPlan
from repro.storage.page import Page


class Disk:
    """A crash-surviving, per-page-atomic store of page images."""

    def __init__(self) -> None:
        self._images: Dict[int, bytes] = {}
        self._failed_pages: Set[int] = set()
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Attached by the owning complex; ``None`` disables injection.
        self.faults: Optional[FaultPlan] = None

    # -- I/O -------------------------------------------------------------

    def write_page(self, page: Page) -> None:
        """Atomically replace the stored image of ``page``.

        With a fault plan attached, the write may fail transiently
        (:class:`~repro.errors.TransientIOError`; callers retry) or
        tear: half the serialized image is persisted and
        :class:`~repro.faults.CrashPointReached` propagates to the
        harness, which crashes the complex — a torn write only exists
        because the writer died mid-write.  The CRC trailer of
        ``Page.to_bytes`` makes the tear detectable on the next read.
        """
        image = page.to_bytes()
        if self.faults is not None:
            self.faults.maybe_io_error("disk.write", page.page_id)
            torn = self.faults.torn_write_len(page.page_id, len(image))
            if torn is not None:
                self._images[page.page_id] = image[:torn]
                self._failed_pages.discard(page.page_id)
                self.writes += 1
                self.bytes_written += torn
                raise CrashPointReached(TORN_WRITE_CRASH)
        self._images[page.page_id] = image
        self._failed_pages.discard(page.page_id)
        self.writes += 1
        self.bytes_written += len(image)

    def read_page(self, page_id: int) -> Page:
        """Read and deserialize a page image.

        Raises :class:`PageNotFoundError` for never-written pages,
        :class:`MediaFailureError` for pages with an injected media
        failure, and :class:`~repro.errors.PageCorruptedError` when the
        stored image fails its CRC (a torn write surfaced).
        """
        if page_id in self._failed_pages:
            raise MediaFailureError(page_id)
        image = self._images.get(page_id)
        if image is None:
            raise PageNotFoundError(page_id)
        self.reads += 1
        self.bytes_read += len(image)
        return Page.from_bytes(image)

    def contains(self, page_id: int) -> bool:
        return page_id in self._images

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._images))

    def stored_lsn(self, page_id: int) -> Optional[int]:
        """page_LSN of the on-disk version, without counting as an I/O.

        Test/assertion helper: lets invariants inspect the disk state the
        way a human debugging a recovery log would.
        """
        image = self._images.get(page_id)
        if image is None or page_id in self._failed_pages:
            return None
        return Page.from_bytes(image).page_lsn

    # -- failure injection --------------------------------------------------

    def inject_media_failure(self, page_id: int) -> None:
        """Make subsequent reads of ``page_id`` fail until rewritten."""
        if page_id not in self._images:
            raise PageNotFoundError(page_id)
        self._failed_pages.add(page_id)

    def has_media_failure(self, page_id: int) -> bool:
        return page_id in self._failed_pages

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
