"""Database pages: slotted records, a page_LSN field, and a byte format.

A :class:`Page` is the unit of transfer between server and clients and
the unit of atomic disk I/O.  Its header carries ``page_LSN`` — in
ARIES/CSA an *update sequence number* assigned locally by whichever
system performed the latest update (section 2.2), required to be
monotonically increasing per page.

Pages hold records in integer slots (a slotted page), plus a small
``meta`` dictionary used by space-map pages (allocation bitmaps) and
B+-tree pages (level, sibling pointers, separator layout).  Pages
serialize to bytes with a CRC so that the simulated disk stores real
images and corruption (process or media failure, section 2.5) is
detectable exactly the way a real system detects it.
"""

from __future__ import annotations

import enum
import zlib
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core import codec
from repro.core.lsn import LSN, NULL_LSN
from repro.errors import (
    PageCorruptedError,
    PageFullError,
    RecordExistsError,
    RecordNotFoundError,
)

#: Fixed header cost charged against the page's byte budget.
HEADER_OVERHEAD = 64
#: Per-record slot cost charged against the byte budget.
SLOT_OVERHEAD = 16
#: Per-meta-entry cost charged against the byte budget.
META_OVERHEAD = 8

MetaValue = Union[int, str, bytes, None]


class PageKind(enum.Enum):
    """What a page is used for; determines how recovery treats it."""

    FREE = "free"
    DATA = "data"
    SPACE_MAP = "space-map"
    INDEX_LEAF = "index-leaf"
    INDEX_INTERNAL = "index-internal"


class Page:
    """One database page.

    Not thread-safe; the simulation is cooperative.  All mutators bump
    nothing themselves — callers set ``page_lsn`` explicitly after
    logging, mirroring the paper's update protocol (look up page_LSN,
    log, then store the returned LSN back into the page).
    """

    __slots__ = (
        "page_id", "kind", "page_lsn", "page_size",
        "_records", "_meta", "_next_slot", "corrupted",
    )

    def __init__(self, page_id: int, kind: PageKind = PageKind.FREE,
                 page_size: int = 4096) -> None:
        self.page_id = page_id
        self.kind = kind
        self.page_lsn: LSN = NULL_LSN
        self.page_size = page_size
        self._records: Dict[int, bytes] = {}
        self._meta: Dict[str, MetaValue] = {}
        self._next_slot = 0
        self.corrupted = False

    # -- integrity ------------------------------------------------------

    def _check(self) -> None:
        if self.corrupted:
            raise PageCorruptedError(self.page_id, "in-memory image")

    def corrupt(self) -> None:
        """Simulate a process failure mid-update: the image is garbage."""
        self.corrupted = True
        self._records.clear()
        self._meta.clear()

    # -- space accounting -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.page_size - HEADER_OVERHEAD

    @property
    def used_bytes(self) -> int:
        used = sum(len(data) + SLOT_OVERHEAD for data in self._records.values())
        for key, value in self._meta.items():
            size = len(value) if isinstance(value, (bytes, str)) else 8
            used += len(key) + size + META_OVERHEAD
        return used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def has_room_for(self, data: bytes) -> bool:
        return self.free_bytes >= len(data) + SLOT_OVERHEAD

    # -- formatting -------------------------------------------------------

    def format(self, kind: PageKind, page_lsn: LSN = NULL_LSN) -> None:
        """(Re)initialize the page as ``kind`` — the section 2.3 path.

        Called when a page is allocated (or reallocated) without reading
        its previous contents from disk.  ``page_lsn`` must come from the
        covering SMP's LSN so per-page monotonicity survives reallocation
        by a different system.
        """
        self.kind = kind
        self.page_lsn = page_lsn
        self._records.clear()
        self._meta.clear()
        self._next_slot = 0
        self.corrupted = False

    # -- records ----------------------------------------------------------

    def insert_record(self, data: bytes, slot: Optional[int] = None) -> int:
        """Insert ``data``; returns the slot used.

        With ``slot=None`` the lowest never-used slot is taken.  Explicit
        slots are used by redo and by undo of deletes (reinsert at the
        original slot).
        """
        self._check()
        if not self.has_room_for(data):
            raise PageFullError(self.page_id)
        if slot is None:
            slot = self._next_slot
        if slot in self._records:
            raise RecordExistsError(self.page_id, slot)
        self._records[slot] = bytes(data)
        if slot >= self._next_slot:
            self._next_slot = slot + 1
        return slot

    def read_record(self, slot: int) -> bytes:
        self._check()
        try:
            return self._records[slot]
        except KeyError:
            raise RecordNotFoundError(self.page_id, slot) from None

    def modify_record(self, slot: int, data: bytes) -> bytes:
        """Replace the record in ``slot``; returns the before-image."""
        self._check()
        if slot not in self._records:
            raise RecordNotFoundError(self.page_id, slot)
        before = self._records[slot]
        grow = len(data) - len(before)
        if grow > 0 and self.free_bytes < grow:
            raise PageFullError(self.page_id)
        self._records[slot] = bytes(data)
        return before

    def delete_record(self, slot: int) -> bytes:
        """Remove the record in ``slot``; returns the before-image."""
        self._check()
        if slot not in self._records:
            raise RecordNotFoundError(self.page_id, slot)
        return self._records.pop(slot)

    def next_free_slot(self) -> int:
        """The slot an auto-placed insert would take (for pre-logging)."""
        self._check()
        return self._next_slot

    def has_record(self, slot: int) -> bool:
        self._check()
        return slot in self._records

    def slots(self) -> Tuple[int, ...]:
        self._check()
        return tuple(sorted(self._records))

    def records(self) -> Iterator[Tuple[int, bytes]]:
        self._check()
        for slot in sorted(self._records):
            yield slot, self._records[slot]

    @property
    def record_count(self) -> int:
        self._check()
        return len(self._records)

    # -- meta ---------------------------------------------------------------

    def get_meta(self, key: str, default: MetaValue = None) -> MetaValue:
        self._check()
        return self._meta.get(key, default)

    def set_meta(self, key: str, value: MetaValue) -> MetaValue:
        """Set a metadata entry; returns the previous value (or None)."""
        self._check()
        before = self._meta.get(key)
        self._meta[key] = value
        return before

    def meta_keys(self) -> Tuple[str, ...]:
        self._check()
        return tuple(sorted(self._meta))

    # -- copying / serialization -------------------------------------------

    def snapshot(self) -> "Page":
        """Deep copy — what crossing the wire or hitting disk produces."""
        self._check()
        clone = Page(self.page_id, self.kind, self.page_size)
        clone.page_lsn = self.page_lsn
        clone._records = dict(self._records)
        clone._meta = dict(self._meta)
        clone._next_slot = self._next_slot
        return clone

    def content_equal(self, other: "Page") -> bool:
        """True when the user-visible content matches (ignores page_lsn)."""
        return (
            self.page_id == other.page_id
            and self.kind == other.kind
            and self._records == other._records
            and self._meta == other._meta
        )

    def to_bytes(self) -> bytes:
        """Serialize with a trailing CRC32 over the payload."""
        self._check()
        payload = codec.encode((
            self.page_id,
            self.kind.value,
            self.page_lsn,
            self.page_size,
            self._next_slot,
            tuple((slot, data) for slot, data in sorted(self._records.items())),
            tuple((k, self._meta[k]) for k in sorted(self._meta)),
        ))
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return payload + crc.to_bytes(4, "big")

    @staticmethod
    def from_bytes(data: bytes) -> "Page":
        """Deserialize; raises :class:`PageCorruptedError` on a bad CRC."""
        if len(data) < 4:
            raise PageCorruptedError(-1, "truncated image")
        payload, crc_bytes = data[:-4], data[-4:]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != int.from_bytes(crc_bytes, "big"):
            raise PageCorruptedError(-1, "crc mismatch")
        fields = codec.decode(payload)
        page_id, kind, page_lsn, page_size, next_slot, records, meta = fields
        page = Page(page_id, PageKind(kind), page_size)
        page.page_lsn = page_lsn
        page._next_slot = next_slot
        page._records = {slot: record for slot, record in records}
        page._meta = {key: value for key, value in meta}
        return page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page(id={self.page_id}, kind={self.kind.value}, "
            f"lsn={self.page_lsn}, records={len(self._records)})"
        )
