"""The unified fault plane: seed-deterministic injection for the complex.

ARIES/CSA's correctness argument (sections 2.5-2.7) is about surviving
failures at *arbitrary* points — not just at the handful of seams a
hand-written crash test happens to pick.  This module gives the
simulation one deterministic chaos source:

* :class:`FaultPlan` — carried by :class:`~repro.config.SystemConfig`
  and attached to every instrumented object of the complex (the same
  attachment-IS-the-enable-switch pattern as the tracer: an unattached
  ``faults`` attribute costs one pointer comparison).  The plan owns a
  single seed from which every *namespace* ("transport", "disk", "log")
  derives its own :class:`random.Random` stream, so transport drops,
  torn page writes, transient I/O errors and partial log flushes replay
  bit-for-bit from one knob.  The ``transport`` namespace is seeded
  with the bare integer seed for bit-for-bit parity with PR 1's
  standalone ``FaultyTransport(seed=...)`` (pinned by
  ``test_transport_parity.py``); every other namespace derives a
  distinct stream from ``"<seed>:<namespace>"``.

* **Crashpoints** — named instrumentation sites
  (``"server.checkpoint.before_master"``) threaded through the server,
  client, recovery passes, 2PC coordinator, buffer pool, stable log and
  archive.  A plan *armed* with a schedule raises
  :class:`CrashPointReached` at the scheduled hit of the scheduled
  site; the harness (``repro.harness.chaos``) turns that into a
  whole-complex crash + recovery and checks the durability oracle and
  runtime invariants.  A schedule is a sequence of legs so crashes can
  recur *during recovery* (the section 2.5 restart-is-restartable
  claim).

Every injected fault is emitted as a tracer instant (category
``"fault"``) when a tracer is attached, so ``tracedump`` timelines show
exactly what chaos ran.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Tuple, TypeVar

from repro.errors import TransientIOError

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

#: Every named crashpoint instrumented in the codebase.  Kept as a pure
#: literal (like ``TRACKED_COUNTER_ATTRS``) so the explorer, the docs
#: and a consistency test can enumerate the sites without executing
#: them.  Naming convention: ``<component>.<operation>.<position>``.
CRASHPOINTS: Tuple[str, ...] = (
    # server.py — checkpointing (section 2.5.2)
    "server.checkpoint.begin",
    "server.checkpoint.before_force",
    "server.checkpoint.before_master",
    "server.checkpoint.after_master",
    "server.client_checkpoint.before_force",
    "server.client_checkpoint.before_master",
    # server.py — WAL / page flush (section 2.5.1)
    "server.flush.before_force",
    "server.flush.before_write",
    "server.flush.after_write",
    "server.log_ship.before_append",
    "server.commit.before_force",
    "server.bootstrap.before_format",
    # server.py — restart recovery (section 2.5)
    "server.restart.before_analysis",
    "server.restart.before_redo",
    "server.restart.before_undo",
    "server.restart.before_lock_rebuild",
    # server.py — client recovery (section 2.6.1)
    "server.client_recovery.before_analysis",
    "server.client_recovery.before_redo",
    "server.client_recovery.before_undo",
    "server.client_recovery.before_checkpoint",
    # server.py — media recovery / backup (section 2.5.3)
    "server.media.before_restore",
    "server.media.before_write",
    "server.backup.before_archive",
    # client.py — commit / prepare / rollback (sections 2.1, 2.4)
    "client.commit.before_commit_record",
    "client.commit.before_force",
    "client.commit.before_end",
    "client.prepare.before_force",
    "client.rollback.before_clr",
    "client.checkpoint.before_send",
    "client.evict.before_push",
    "client.alloc.between_smp_and_format",
    # recovery.py — inside each pass
    "recovery.analysis.scan",
    "recovery.redo.scan",
    "recovery.undo.scan",
    # coordinator.py — 2PC (presumed abort)
    "coordinator.2pc.before_prepare",
    "coordinator.2pc.before_decision",
    "coordinator.2pc.before_commit_fanout",
    # storage hot paths
    "pool.evict.before_writeback",
    "disk.write.before",
    "log.append.before",
    "log.force.before",
    "archive.backup.before_copy",
    "archive.restore.before",
    # replication.py — log shipping and failover (DESIGN §15)
    "replication.ship.before_send",
    "replication.ship.before_append",
    "replication.ship.before_ack",
    "replication.apply.before_redo",
    "replication.promote.before_fence",
    "replication.promote.before_checkpoint",
    "replication.promote.before_restart",
)

#: Synthetic crash names raised by fault draws rather than crashpoint
#: schedules (a torn write *is* a crash mid-write).
TORN_WRITE_CRASH = "disk.write.torn"

#: Retry budget used by the page-flush and archive retry loops.  Kept
#: strictly above the largest allowed ``io_error_burst`` so a retried
#: operation always succeeds deterministically.
MAX_IO_RETRIES = 4


class CrashPointReached(BaseException):
    """Control-flow signal: the armed crashpoint (or a torn write) fired.

    Deliberately **not** a :class:`~repro.errors.ReproError`:
    ``RpcDispatcher.dispatch`` converts domain errors into failed
    responses, but a crash must propagate raw through every layer to
    the harness, which then crashes the complex for real.  Subclassing
    :class:`BaseException` also keeps broad ``except Exception``
    recovery shims from accidentally swallowing a scheduled crash.
    """

    def __init__(self, point: str, leg: int = 0) -> None:
        super().__init__(f"crashpoint {point!r} fired (schedule leg {leg})")
        self.point = point
        self.leg = leg


@dataclass(eq=False)
class FaultPlan:
    """One seeded description of all the chaos a run should see.

    The plan is both configuration (rates, the crash schedule) and
    runtime state (namespace RNGs, hit counters, fault counters), so a
    schedule id plus a seed fully determines a run; build a fresh plan
    per run to replay.
    """

    #: Root seed; every namespace stream derives from it.
    seed: int = 0
    #: Probability a disk page write tears (persists half the image and
    #: crashes the complex mid-write).
    torn_write_rate: float = 0.0
    #: Tear exactly the k-th disk page write (1-based; None disables).
    #: Deterministic alternative to ``torn_write_rate`` for tests.
    torn_write_at: Optional[int] = None
    #: Probability an individual disk/archive I/O fails transiently.
    io_error_rate: float = 0.0
    #: Most consecutive transient failures one operation can see; must
    #: stay below :data:`MAX_IO_RETRIES` so retries always converge.
    io_error_burst: int = 2
    #: Probability that a crash flushes part of the stable log's
    #: unforced suffix instead of losing all of it (section 2.5:
    #: recovery must tolerate *more* log surviving than was promised).
    partial_flush_rate: float = 0.0
    #: Crash schedule: ``((point, hit), ...)`` legs.  Leg k raises
    #: :class:`CrashPointReached` at the ``hit``-th time ``point`` is
    #: reached after leg k-1 fired (hit counts reset per leg, so nested
    #: crash-during-recovery schedules compose naturally).
    schedule: Tuple[Tuple[str, int], ...] = ()

    #: Attached by the owning complex; fault instants are emitted here.
    tracer: Optional["Tracer"] = field(default=None, repr=False,
                                       compare=False)

    # -- public counters (registered in repro.obs.registry) ---------------
    faults_injected: int = field(default=0, compare=False)
    torn_writes: int = field(default=0, compare=False)
    io_retries: int = field(default=0, compare=False)
    crashpoints_hit: int = field(default=0, compare=False)
    schedules_explored: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.io_error_burst < MAX_IO_RETRIES:
            raise ValueError(
                f"io_error_burst must be in [0, {MAX_IO_RETRIES}), "
                f"got {self.io_error_burst}")
        for point, hit in self.schedule:
            if hit < 1:
                raise ValueError(f"schedule hit for {point!r} must be >= 1")
        self._rngs: Dict[str, random.Random] = {}
        self._leg_hits: Dict[str, int] = {}
        self._total_hits: Dict[str, int] = {}
        self._next_leg = 0
        self._io_failures: Dict[str, int] = {}
        self._disk_writes_seen = 0
        self._partitions: Set[Tuple[str, str]] = set()

    # -- link partitions --------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Sever the link between two nodes (both directions).

        Partitioned deliveries are dropped at the network layer —
        request legs never reach the destination, exactly like a
        transport drop, but deterministically and until :meth:`heal`.
        The replication failure detector sees a partitioned primary the
        same way it sees a crashed one: heartbeats stop arriving.
        """
        self._partitions.add((a, b))
        self._partitions.add((b, a))
        self._instant(self.tracer, "partition", src=a, dst=b)

    def heal(self, a: str, b: str) -> None:
        """Restore the link between two nodes (both directions)."""
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))
        self._instant(self.tracer, "heal", src=a, dst=b)

    def is_partitioned(self, src: str, dst: str) -> bool:
        return (src, dst) in self._partitions

    # -- namespaced randomness -------------------------------------------

    def rng(self, namespace: str, seed: Optional[int] = None) -> random.Random:
        """The plan-owned RNG stream for ``namespace`` (created lazily).

        With ``seed`` given, the stream is seeded with that bare integer
        — the transport namespace uses this for bit-for-bit parity with
        the standalone ``FaultyTransport(seed=...)`` draws.  Otherwise
        the stream derives from ``"<plan seed>:<namespace>"`` so every
        namespace sees independent, replayable randomness.
        """
        stream = self._rngs.get(namespace)
        if stream is None:
            material: object = (seed if seed is not None
                                else f"{self.seed}:{namespace}")
            stream = self._rngs[namespace] = random.Random(material)
        return stream

    # -- crashpoints ------------------------------------------------------

    def crashpoint(self, name: str, tracer: Optional["Tracer"] = None) -> None:
        """Note one pass through the named site; crash if armed for it.

        Call sites guard with ``if self.faults is not None`` so the
        disabled cost is one pointer comparison.  Raises
        :class:`CrashPointReached` when the current schedule leg names
        this site and its per-leg hit count is reached.
        """
        self.crashpoints_hit += 1
        self._total_hits[name] = self._total_hits.get(name, 0) + 1
        leg = self._next_leg
        if leg >= len(self.schedule):
            return
        count = self._leg_hits.get(name, 0) + 1
        self._leg_hits[name] = count
        armed_name, armed_hit = self.schedule[leg]
        if name != armed_name or count != armed_hit:
            return
        self._next_leg = leg + 1
        self._leg_hits = {}
        self.faults_injected += 1
        self._instant(tracer, "crashpoint", point=name, leg=leg)
        raise CrashPointReached(name, leg)

    def hit_counts(self) -> Dict[str, int]:
        """Total hits per crashpoint over the plan's lifetime (census)."""
        return dict(self._total_hits)

    @property
    def schedule_exhausted(self) -> bool:
        """True once every leg of the crash schedule has fired."""
        return self._next_leg >= len(self.schedule)

    # -- disk faults ------------------------------------------------------

    def torn_write_len(self, page_id: int, size: int) -> Optional[int]:
        """Decide whether this page write tears; return the surviving
        byte count (half the image) or None for a clean write.

        The caller persists the truncated image and then raises
        :class:`CrashPointReached` with :data:`TORN_WRITE_CRASH` — a
        torn write only exists because the writer died mid-write, so
        the tear and the crash are one event.
        """
        self._disk_writes_seen += 1
        fire = self._disk_writes_seen == self.torn_write_at
        if not fire and self.torn_write_rate > 0:
            fire = self.rng("disk").random() < self.torn_write_rate
        if not fire:
            return None
        self.torn_writes += 1
        self.faults_injected += 1
        torn = size // 2
        self._instant(None, "torn_write", page_id=page_id,
                      kept_bytes=torn, lost_bytes=size - torn)
        return torn

    def maybe_io_error(self, what: str, key: int) -> None:
        """Raise a :class:`~repro.errors.TransientIOError` when the disk
        namespace draw fires, bounded to ``io_error_burst`` consecutive
        failures per operation so retry loops always converge."""
        if self.io_error_rate <= 0:
            return
        streak = self._io_failures.get(what, 0)
        if streak >= self.io_error_burst:
            self._io_failures[what] = 0
            return
        if self.rng("disk").random() < self.io_error_rate:
            self._io_failures[what] = streak + 1
            self.faults_injected += 1
            self._instant(None, "io_error", what=what, key=key,
                          attempt=streak + 1)
            raise TransientIOError(what, streak + 1)
        self._io_failures[what] = 0

    def note_io_retry(self, what: str) -> None:
        """Account one retry of a transiently failed I/O."""
        self.io_retries += 1
        self._instant(None, "io_retry", what=what)

    # -- log faults -------------------------------------------------------

    def partial_flush_frames(self, unforced_frames: int) -> int:
        """How many of the crash-lost unforced log frames survive anyway.

        Models a device that had flushed part of its queue when power
        failed: recovery then sees *more* stable log than the forced
        boundary promised, which is always safe (analysis/redo are
        driven by what is actually on stable storage) but exercises
        bookkeeping a clean truncation never would.
        """
        if unforced_frames <= 0 or self.partial_flush_rate <= 0:
            return 0
        stream = self.rng("log")
        if stream.random() >= self.partial_flush_rate:
            return 0
        survivors = stream.randint(1, unforced_frames)
        self.faults_injected += 1
        self._instant(None, "partial_flush", survivors=survivors,
                      unforced=unforced_frames)
        return survivors

    # -- transport faults -------------------------------------------------

    def note_transport_fault(self, kind: str) -> None:
        """Account one transport drop/delay drawn from the plan's RNG."""
        self.faults_injected += 1
        self._instant(None, "transport", kind=kind)

    # -- internals --------------------------------------------------------

    def _instant(self, tracer: Optional["Tracer"], name: str,
                 **args: object) -> None:
        emit = tracer if tracer is not None else self.tracer
        if emit is not None:
            emit.instant("fault", name, "faults", **args)


_T = TypeVar("_T")


def io_retry(plan: Optional[FaultPlan], fn: Callable[[], _T], what: str) -> _T:
    """Run ``fn`` with the deterministic transient-I/O retry policy.

    With no plan attached this is a plain call (faults off = zero
    behavior change).  With a plan, transient failures are retried up
    to :data:`MAX_IO_RETRIES` times; the burst bound in
    :meth:`FaultPlan.maybe_io_error` guarantees convergence, so the
    final re-raise is unreachable in practice but keeps the loop
    honest.
    """
    if plan is None:
        return fn()
    attempt = 0
    while True:
        try:
            return fn()
        except TransientIOError:
            attempt += 1
            if attempt > MAX_IO_RETRIES:
                raise
            plan.note_io_retry(what)
